//! The far-memory tier: frame-keyed residency, fetch-on-access, and the
//! crash-consistent demote/promote protocol.
//!
//! # Frame-keyed residency
//!
//! Demoting a page does NOT unmap it. The page's *frame* keeps its PTE;
//! the frame's contents move to a device slot, the frame is zeroed (so a
//! missed fetch can never silently read stale data), and the frame id is
//! bound to the slot in the residency map. This is the tiering analogue
//! of the paper's zero-copy thesis: because SVAGC moves objects by
//! swapping PTEs, a PTE swap *moves a far page without touching the
//! device* — the frame's slot binding travels with the frame, which the
//! PTE swap re-targets for free. The memmove baseline, by contrast,
//! copies every byte through the CPU each cycle, which forces a fetch of
//! every far page it touches — the thrash the `tiering_resilience` figure
//! measures.
//!
//! # Fetch-on-access
//!
//! [`crate::Kernel::translate`] consults the residency map on every
//! translation (hits and misses alike — a TLB hit proves the *mapping* is
//! cached, not that the frame is resident). A translation that lands on a
//! far frame triggers a fetch: the device read is verified against the
//! page's FNV checksum, retried under the shared
//! [`crate::RetryPolicy`], and the frame's contents are rewritten before
//! the caller's access proceeds. Mutators never observe a zeroed frame.
//!
//! # Crash consistency
//!
//! Residency transitions are write-ahead logged under the reserved
//! [`crate::wal::TIER_EPOCH`], ordered so every crash window recovers to
//! a consistent state:
//!
//! * **Demotion**: device writeback + verify → *WAL record* → zero
//!   frame, move pool charge, insert residency. A crash before the record
//!   (e.g. [`CrashPoint::MidDemoteWriteback`]) leaves the DRAM copy
//!   intact and an orphaned device slot, which recovery's
//!   [`crate::FarDevice::retain_slots`] reclaims.
//! * **Promotion**: device fetch + verify → *WAL record* → rewrite
//!   frame, remove residency, free slot. A crash before the record
//!   ([`CrashPoint::MidPromoteFetch`]) leaves the page far; recovery
//!   re-fetches it.
//!
//! Recovery replays the tier stream in log order to rebuild the residency
//! map, rebuilds the device free list, then promotes everything — all
//! *before* the GC undo pass, whose pre-images must land in resident
//! frames.
//!
//! # Failure ladder
//!
//! Transient device faults retry with exponential backoff. A writeback
//! that fails permanently is *graceful*: the data never left DRAM, so the
//! tier reports [`TierError::WritebackFailed`] and the policy layer
//! degrades to DRAM-only. A fetch that fails permanently lost the only
//! copy: [`TierError::FetchLost`] (surfaced as
//! [`VmError::FarPageLost`] on the access path) is fatal for the run —
//! but still a typed, tenant-local failure, never a panic.

use std::collections::{BTreeMap, BTreeSet};

use crate::device::{DeviceStats, FarDevice, SlotId, SLOT_BYTES};
use crate::fault::CrashPoint;
use crate::retry::RetryPolicy;
use crate::state::Kernel;
use crate::wal::{WalPayload, TIER_EPOCH};
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{AddressSpace, FrameId, VirtAddr, VmError};

/// Failure of a tier operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierError {
    /// A demotion writeback failed permanently (retries exhausted or the
    /// device went offline). Graceful: the page never left DRAM; the
    /// policy layer should degrade to DRAM-only mode.
    WritebackFailed {
        /// The page that stayed resident.
        frame: FrameId,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A fetch of a far page failed permanently: the device holds the
    /// only copy, so the data is lost. Fatal for the run (typed, never a
    /// panic).
    FetchLost {
        /// The unfetchable frame.
        frame: FrameId,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The far device has no free slot (the tier is full); the demotion
    /// is skipped. Graceful — like `WritebackFailed`, nothing was lost.
    DeviceFull,
    /// A seeded crash point fired mid-operation: the machine is dead.
    Crashed {
        /// The crash point that fired.
        point: CrashPoint,
    },
    /// The functional memory substrate failed (bad VA, etc.).
    Vm(VmError),
}

impl From<VmError> for TierError {
    fn from(e: VmError) -> TierError {
        TierError::Vm(e)
    }
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::WritebackFailed { frame, attempts } => write!(
                f,
                "far-tier writeback of frame {} failed permanently after {attempts} attempt(s)",
                frame.0
            ),
            TierError::FetchLost { frame, attempts } => write!(
                f,
                "far-tier fetch of frame {} failed permanently after {attempts} attempt(s): data lost",
                frame.0
            ),
            TierError::DeviceFull => write!(f, "far device full: demotion skipped"),
            TierError::Crashed { point } => write!(f, "crashed at {}", point.name()),
            TierError::Vm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TierError {}

/// Tier activity counters (volatile, for reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Pages demoted to the far tier.
    pub demotions: u64,
    /// Pages promoted back to DRAM (all causes).
    pub promotions: u64,
    /// Promotions triggered by a mutator/GC access (the thrash metric).
    pub fetch_on_access: u64,
    /// Writeback attempts retried after a transient fault.
    pub writeback_retries: u64,
    /// Fetch attempts retried after a transient fault.
    pub fetch_retries: u64,
    /// Cycles burned in retry backoff.
    pub backoff_cycles: u64,
    /// Total cycles charged to tier operations.
    pub tier_cycles: u64,
    /// High-water mark of simultaneously far pages.
    pub far_peak: u32,
    /// Far pages discarded without a fetch because their range was
    /// unmapped (heap decommit of dead pages).
    pub discards: u64,
}

/// The kernel's far-memory tier: the device plus the frame-keyed
/// residency map and the retry policy for its I/O.
#[derive(Debug)]
pub struct FarTier {
    pub(crate) device: FarDevice,
    /// Frame → device slot for every currently-far page. Frame-keyed (not
    /// VPN-keyed) so PTE swaps move far pages for free; BTreeMap so every
    /// iteration (promote-all, recovery) is deterministic.
    pub(crate) residency: BTreeMap<FrameId, SlotId>,
    /// Frames touched by translation since the last policy drain — the
    /// hotness signal the demotion policy feeds on.
    pub(crate) touched: BTreeSet<FrameId>,
    /// Retry/backoff policy for device I/O (shared shape with SwapVA).
    pub(crate) retry: RetryPolicy,
    pub(crate) stats: TierStats,
}

impl FarTier {
    /// A tier backed by `device`, retrying I/O per `retry`.
    pub fn new(device: FarDevice, retry: RetryPolicy) -> FarTier {
        FarTier {
            device,
            residency: BTreeMap::new(),
            touched: BTreeSet::new(),
            retry,
            stats: TierStats::default(),
        }
    }

    /// Is `frame`'s content currently on the far tier?
    pub fn is_far(&self, frame: FrameId) -> bool {
        self.residency.contains_key(&frame)
    }

    /// Number of currently-far pages.
    pub fn far_count(&self) -> u32 {
        self.residency.len() as u32
    }

    /// The far frames, in deterministic (sorted) order.
    pub fn far_frames(&self) -> Vec<FrameId> {
        self.residency.keys().copied().collect()
    }

    /// Drain the set of frames touched since the last drain (the hotness
    /// signal for the demotion policy).
    pub fn take_touched(&mut self) -> BTreeSet<FrameId> {
        std::mem::take(&mut self.touched)
    }

    /// Tier activity counters.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// The backing device's activity counters.
    pub fn device_stats(&self) -> DeviceStats {
        self.device.stats()
    }

    /// Device slots currently holding data (the tier half of the
    /// frame-leak oracle: after promote-all this must be zero and match
    /// the pool's `far_in_use`).
    pub fn slots_in_use(&self) -> u32 {
        self.device.slots_in_use()
    }

    /// Has the backing device latched offline?
    pub fn device_offline(&self) -> bool {
        self.device.is_offline()
    }

    /// Install (or clear) the device's seeded fault plan.
    pub fn set_device_fault_plan(&mut self, plan: Option<crate::device::DeviceFaultPlan>) {
        self.device.set_fault_plan(plan);
    }

    fn note_far(&mut self) {
        self.stats.far_peak = self.stats.far_peak.max(self.residency.len() as u32);
    }
}

impl Kernel {
    /// Install (or remove) the far-memory tier. With no tier installed
    /// every tier hook is a no-op and runs are byte-identical to builds
    /// that predate the tier.
    pub fn set_far_tier(&mut self, tier: Option<FarTier>) {
        self.tier = tier;
    }

    /// The installed tier, if any.
    pub fn far_tier(&self) -> Option<&FarTier> {
        self.tier.as_ref()
    }

    /// Mutable access to the installed tier.
    pub fn far_tier_mut(&mut self) -> Option<&mut FarTier> {
        self.tier.as_mut()
    }

    /// Tier-aware uncosted functional read: like `vmem.read_u64`, but a
    /// far page's word is served from its device slot via a fault-free
    /// peek. The heap verifier reads through this so its invariant checks
    /// see through the tier without promoting anything (and without
    /// rolling the device fault plan — observation cannot perturb the
    /// run). With no tier installed it is exactly `vmem.read_u64`.
    pub fn read_u64_tiered(
        &self,
        space: &AddressSpace,
        va: VirtAddr,
    ) -> Result<u64, VmError> {
        let pa = space.translate(va)?;
        if let Some(tier) = &self.tier {
            if let Some(&slot) = tier.residency.get(&pa.frame()) {
                let data = tier
                    .device
                    .peek(slot)
                    .expect("residency invariant: a far frame's slot holds data");
                let off = va.page_offset() as usize;
                let word: [u8; 8] = data[off..off + 8]
                    .try_into()
                    .expect("page-offset word is in the slot");
                return Ok(u64::from_le_bytes(word));
            }
        }
        self.vmem.phys.read_u64(pa)
    }

    /// Demote the page at `va` to the far tier: write its frame's
    /// contents to a device slot (verified, retried), log the residency
    /// record, zero the frame, and move the pool charge off the DRAM
    /// budget. The PTE is untouched — subsequent accesses fetch on
    /// demand. No-op if the page is already far.
    pub fn tier_demote_page(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
    ) -> Result<Cycles, TierError> {
        let Some(mut tier) = self.tier.take() else {
            return Ok(Cycles::ZERO);
        };
        let r = self.tier_demote_inner(&mut tier, space, va);
        if let Ok(c) = r {
            tier.stats.tier_cycles += c.0;
        }
        self.tier = Some(tier);
        r
    }

    fn tier_demote_inner(
        &mut self,
        tier: &mut FarTier,
        space: &AddressSpace,
        va: VirtAddr,
    ) -> Result<Cycles, TierError> {
        let frame = space.translate(va)?.frame();
        if tier.residency.contains_key(&frame) {
            return Ok(Cycles::ZERO);
        }
        // The demote pass walks the page table functionally (GC-side).
        let mut t = Cycles(self.machine.costs.tlb_refill);
        let bytes = self.vmem.phys.frame_bytes(frame)?.to_vec();
        let slot = tier.device.alloc_slot().map_err(|_| TierError::DeviceFull)?;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let wrote = tier
                .device
                .write(slot, &bytes)
                .and_then(|c| Ok(c + tier.device.verify(slot)?));
            match wrote {
                Ok(c) => {
                    t += c;
                    break;
                }
                Err(e) if e.is_transient() && attempts <= tier.retry.max_retries => {
                    let back = tier.retry.backoff(attempts);
                    t += e.spent() + back;
                    tier.stats.writeback_retries += 1;
                    tier.stats.backoff_cycles += back.0;
                }
                Err(_) => {
                    // Permanent: the page never left DRAM. Unwind the slot
                    // and report gracefully so the policy layer can degrade.
                    tier.device.release_slot(slot);
                    return Err(TierError::WritebackFailed { frame, attempts });
                }
            }
        }
        // Crash window: the device holds the copy but the WAL record is
        // not durable. Recovery sees no record → the page stays resident
        // (the DRAM copy is intact) and the slot is reclaimed as orphaned.
        self.crash_gate(CrashPoint::MidDemoteWriteback)
            .map_err(|_| TierError::Crashed {
                point: CrashPoint::MidDemoteWriteback,
            })?;
        t += self.wal_tier_record(WalPayload::TierDemote {
            frame: u64::from(frame.0),
            slot: u64::from(slot.0),
        });
        self.vmem.phys.zero_frame(frame)?;
        if let Some(lease) = self.vmem.frames.lease() {
            lease.demote_charge(frame)?;
        }
        tier.residency.insert(frame, slot);
        tier.touched.remove(&frame);
        tier.stats.demotions += 1;
        tier.note_far();
        self.trace.instant(
            TraceKind::WalRecord,
            Cycles::ZERO,
            0,
            &[
                ("tier_demote", 1),
                ("frame", u64::from(frame.0)),
                ("slot", u64::from(slot.0)),
            ],
        );
        Ok(t)
    }

    /// Promote one far frame back to DRAM (explicit, crash-gated path:
    /// GC passes, promote-all, recovery). No-op if the frame is resident.
    pub fn tier_promote_frame(&mut self, frame: FrameId) -> Result<Cycles, TierError> {
        self.tier_promote(frame, true, false)
    }

    /// Promote every far page back to DRAM in deterministic order — the
    /// end-of-run step that makes the invisibility oracle meaningful
    /// (content hashes are computed over a fully-resident heap) and the
    /// degrade ladder's DRAM-only transition.
    pub fn tier_promote_all(&mut self) -> Result<Cycles, TierError> {
        let frames = match &self.tier {
            Some(t) => t.far_frames(),
            None => return Ok(Cycles::ZERO),
        };
        let mut t = Cycles::ZERO;
        for frame in frames {
            t += self.tier_promote_frame(frame)?;
        }
        Ok(t)
    }

    fn tier_promote(
        &mut self,
        frame: FrameId,
        gate: bool,
        on_access: bool,
    ) -> Result<Cycles, TierError> {
        let Some(mut tier) = self.tier.take() else {
            return Ok(Cycles::ZERO);
        };
        let r = self.tier_promote_inner(&mut tier, frame, gate, on_access);
        if let Ok(c) = r {
            tier.stats.tier_cycles += c.0;
        }
        self.tier = Some(tier);
        r
    }

    fn tier_promote_inner(
        &mut self,
        tier: &mut FarTier,
        frame: FrameId,
        gate: bool,
        on_access: bool,
    ) -> Result<Cycles, TierError> {
        let Some(&slot) = tier.residency.get(&frame) else {
            return Ok(Cycles::ZERO);
        };
        let mut t = Cycles::ZERO;
        let mut buf = vec![0u8; SLOT_BYTES];
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match tier.device.read(slot, &mut buf) {
                Ok(c) => {
                    t += c;
                    break;
                }
                Err(e) if e.is_transient() && attempts <= tier.retry.max_retries => {
                    let back = tier.retry.backoff(attempts);
                    t += e.spent() + back;
                    tier.stats.fetch_retries += 1;
                    tier.stats.backoff_cycles += back.0;
                }
                Err(_) => return Err(TierError::FetchLost { frame, attempts }),
            }
        }
        if gate {
            // Crash window: the fetch returned but nothing landed. The
            // residency map and slot are untouched; recovery re-fetches.
            self.crash_gate(CrashPoint::MidPromoteFetch)
                .map_err(|_| TierError::Crashed {
                    point: CrashPoint::MidPromoteFetch,
                })?;
        }
        t += self.wal_tier_record(WalPayload::TierPromote {
            frame: u64::from(frame.0),
            slot: u64::from(slot.0),
        });
        self.vmem.phys.write_bytes(frame.base(), &buf)?;
        tier.device
            .free_slot(slot)
            .expect("residency invariant: a far frame's slot holds data");
        if let Some(lease) = self.vmem.frames.lease() {
            lease.promote_charge(frame)?;
        }
        tier.residency.remove(&frame);
        tier.stats.promotions += 1;
        if on_access {
            tier.stats.fetch_on_access += 1;
        }
        Ok(t)
    }

    /// Translation hook: note the access for the hotness signal and, if
    /// the frame is far, fetch it before the access proceeds. Crash
    /// points do not fire on this path (a `VmError` cannot carry a crash);
    /// the crash matrix drives the explicit promote paths instead.
    /// Permanent fetch failure surfaces as [`VmError::FarPageLost`].
    #[cold]
    pub(crate) fn tier_fetch_on_access(&mut self, frame: FrameId) -> Result<Cycles, VmError> {
        let far = match self.tier.as_mut() {
            Some(t) => {
                t.touched.insert(frame);
                t.is_far(frame)
            }
            None => false,
        };
        if !far {
            return Ok(Cycles::ZERO);
        }
        self.perf.tier_fetches += 1;
        match self.tier_promote(frame, false, true) {
            Ok(c) => Ok(c),
            Err(TierError::Vm(e)) => Err(e),
            Err(_) => Err(VmError::FarPageLost(frame)),
        }
    }

    /// Raw-write hook: promote every far page overlapping `bytes` bytes
    /// at `from` before an untranslated bulk write lands. Functional
    /// writes that go straight to `vmem` (object zeroing, bulk init,
    /// rollback pre-image restores) bypass the translation hook; on a
    /// demoted page they would land in the zeroed frame and be clobbered
    /// by the next fetch-on-access, resurrecting dead device bytes over
    /// live data. No-op without a tier or when every page is resident.
    pub fn tier_resolve_write_range(
        &mut self,
        space: &AddressSpace,
        from: VirtAddr,
        bytes: u64,
    ) -> Result<Cycles, VmError> {
        if self.tier.is_none() || bytes == 0 {
            return Ok(Cycles::ZERO);
        }
        let mut t = Cycles::ZERO;
        let pages = (from + (bytes - 1)).vpn() - from.vpn() + 1;
        for i in 0..pages {
            let pa = space.translate(from.add_pages(i))?;
            t += self.tier_fetch_on_access(pa.frame())?;
        }
        Ok(t)
    }

    /// Recovery: rebuild the residency map by replaying the WAL's tier
    /// stream in log order, reclaim orphaned device slots, then promote
    /// every far page — which must happen *before* the GC undo pass so
    /// pre-images land in resident frames. Returns `(far pages restored,
    /// cycles)`.
    pub fn tier_recover(&mut self) -> Result<(u32, Cycles), TierError> {
        if self.tier.is_none() {
            return Ok((0, Cycles::ZERO));
        }
        let scan = self.wal.scan();
        let mut residency: BTreeMap<FrameId, SlotId> = BTreeMap::new();
        for rec in scan.records.iter().filter(|r| r.epoch == TIER_EPOCH) {
            match rec.payload {
                WalPayload::TierDemote { frame, slot } => {
                    residency.insert(FrameId(frame as u32), SlotId(slot as u32));
                }
                WalPayload::TierPromote { frame, .. } => {
                    residency.remove(&FrameId(frame as u32));
                }
                _ => {}
            }
        }
        let restored = residency.len() as u32;
        let live: BTreeSet<SlotId> = residency.values().copied().collect();
        let tier = self.tier.as_mut().expect("checked above");
        tier.residency = residency;
        tier.touched.clear();
        tier.device.retain_slots(&live);
        let t = self.tier_promote_all()?;
        Ok((restored, t))
    }

    /// Drop the residency of any far page in the `pages`-page range at
    /// `from` of `space` *without* touching the device data path. For
    /// callers about to unmap the range (heap decommit after compaction):
    /// the device copy is dead, so fetching it would be waste — but the
    /// frame is headed back to the pool, and a stale frame-keyed binding
    /// would resurrect dead bytes into whoever gets the frame next. Logs
    /// the promote record first (recovery must not rebuild the binding),
    /// frees the slot, and moves the pool charge back where the pending
    /// frame-free expects it. Pure bookkeeping: works even when the
    /// device is offline, which is exactly when it matters most.
    pub fn tier_discard_range(&mut self, space: &AddressSpace, from: VirtAddr, pages: u64) -> Cycles {
        let Some(mut tier) = self.tier.take() else {
            return Cycles::ZERO;
        };
        let mut t = Cycles::ZERO;
        for i in 0..pages {
            let Ok(pa) = space.translate(from.add_pages(i)) else {
                continue;
            };
            let frame = pa.frame();
            let Some(slot) = tier.residency.remove(&frame) else {
                continue;
            };
            t += self.wal_tier_record(WalPayload::TierPromote {
                frame: u64::from(frame.0),
                slot: u64::from(slot.0),
            });
            tier.device
                .free_slot(slot)
                .expect("residency invariant: a far frame's slot holds data");
            if let Some(lease) = self.vmem.frames.lease() {
                // The range is being freed either way; a charge error here
                // would mean the pool and the tier disagree about the
                // frame, which the pool's own audit reports.
                let _ = lease.promote_charge(frame);
            }
            tier.stats.discards += 1;
        }
        tier.stats.tier_cycles += t.0;
        self.tier = Some(tier);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceFaultConfig, DeviceFaultPlan};
    use crate::fault::CrashPlan;
    use svagc_metrics::MachineConfig;
    use svagc_vmem::Asid;

    fn setup(tier_slots: u32) -> (Kernel, AddressSpace, VirtAddr) {
        let mut k = Kernel::new(MachineConfig::i5_7600(), 64);
        let mut s = AddressSpace::new(Asid(1));
        let va = k.vmem.alloc_region(&mut s, 4).unwrap();
        k.set_far_tier(Some(FarTier::new(
            FarDevice::new(tier_slots),
            RetryPolicy::default(),
        )));
        (k, s, va)
    }

    #[test]
    fn demote_then_access_fetches_identical_content() {
        let (mut k, s, va) = setup(8);
        k.write_word(&s, crate::CoreId(0), va, 0xC0FFEE).unwrap();
        let t = k.tier_demote_page(&s, va).unwrap();
        assert!(t.get() >= FarDevice::WRITEBACK_CYCLES);
        assert_eq!(k.far_tier().unwrap().far_count(), 1);
        // The frame itself is zeroed (uncosted peek past the hook).
        let frame = s.translate(va).unwrap().frame();
        assert_eq!(k.vmem.phys.read_u64(frame.base()).unwrap(), 0);
        // A costed access fetches transparently and sees the real data.
        let (v, t) = k.read_word(&s, crate::CoreId(0), va).unwrap();
        assert_eq!(v, 0xC0FFEE);
        assert!(t.get() >= FarDevice::FETCH_CYCLES, "fetch cost charged");
        let st = k.far_tier().unwrap().stats();
        assert_eq!((st.demotions, st.promotions, st.fetch_on_access), (1, 1, 1));
        assert_eq!(k.far_tier().unwrap().slots_in_use(), 0, "slot freed");
    }

    #[test]
    fn double_demote_is_a_noop_and_promote_all_drains() {
        let (mut k, s, va) = setup(8);
        for i in 0..4u64 {
            k.write_word(&s, crate::CoreId(0), va.add_pages(i), 100 + i)
                .unwrap();
            k.tier_demote_page(&s, va.add_pages(i)).unwrap();
        }
        assert_eq!(k.tier_demote_page(&s, va).unwrap(), Cycles::ZERO);
        assert_eq!(k.far_tier().unwrap().far_count(), 4);
        k.tier_promote_all().unwrap();
        assert_eq!(k.far_tier().unwrap().far_count(), 0);
        assert_eq!(k.far_tier().unwrap().slots_in_use(), 0);
        for i in 0..4u64 {
            let (v, _) = k.read_word(&s, crate::CoreId(0), va.add_pages(i)).unwrap();
            assert_eq!(v, 100 + i);
        }
    }

    #[test]
    fn transient_faults_retry_and_succeed() {
        let (mut k, s, va) = setup(8);
        k.write_word(&s, crate::CoreId(0), va, 7).unwrap();
        let plan = DeviceFaultPlan::new(DeviceFaultConfig::uniform(0.4, 11));
        k.far_tier_mut().unwrap().device.set_fault_plan(Some(plan));
        for i in 0..4u64 {
            k.tier_demote_page(&s, va.add_pages(i)).unwrap();
        }
        k.tier_promote_all().unwrap();
        let (v, _) = k.read_word(&s, crate::CoreId(0), va).unwrap();
        assert_eq!(v, 7);
        let st = k.far_tier().unwrap().stats();
        assert!(
            st.writeback_retries + st.fetch_retries > 0,
            "p=0.4 over many ops must retry at least once"
        );
        assert!(st.backoff_cycles > 0);
    }

    #[test]
    fn offline_during_writeback_is_graceful() {
        let (mut k, s, va) = setup(8);
        k.write_word(&s, crate::CoreId(0), va, 42).unwrap();
        let plan =
            DeviceFaultPlan::new(DeviceFaultConfig::uniform(0.0, 1).with_offline_after(0));
        k.far_tier_mut().unwrap().device.set_fault_plan(Some(plan));
        let e = k.tier_demote_page(&s, va).unwrap_err();
        assert!(matches!(e, TierError::WritebackFailed { .. }));
        // Nothing was lost: the page is still resident and readable.
        assert_eq!(k.far_tier().unwrap().far_count(), 0);
        assert_eq!(k.far_tier().unwrap().slots_in_use(), 0);
        let (v, _) = k.read_word(&s, crate::CoreId(0), va).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn offline_after_demotion_loses_the_page_with_a_typed_error() {
        let (mut k, s, va) = setup(8);
        k.write_word(&s, crate::CoreId(0), va, 42).unwrap();
        k.tier_demote_page(&s, va).unwrap();
        let plan =
            DeviceFaultPlan::new(DeviceFaultConfig::uniform(0.0, 1).with_offline_after(0));
        k.far_tier_mut().unwrap().device.set_fault_plan(Some(plan));
        // Explicit promote: typed FetchLost.
        let e = k.tier_promote_frame(s.translate(va).unwrap().frame()).unwrap_err();
        assert!(matches!(e, TierError::FetchLost { .. }));
        // Access path: typed FarPageLost, never fabricated zeros.
        let e = k.read_word(&s, crate::CoreId(0), va).unwrap_err();
        assert!(matches!(e, VmError::FarPageLost(_)));
    }

    #[test]
    fn pte_swap_moves_far_pages_without_device_traffic() {
        // The zero-copy thesis, tiered: swap a far page with a resident
        // one by PTE swap; the residency map follows the frames, so no
        // fetch happens until someone actually touches the data.
        let (mut k, mut s, va) = setup(8);
        let a = va;
        let b = va.add_pages(1);
        k.write_word(&s, crate::CoreId(0), a, 0xAAAA).unwrap();
        k.write_word(&s, crate::CoreId(0), b, 0xBBBB).unwrap();
        k.tier_demote_page(&s, a).unwrap();
        let fetches_before = k.far_tier().unwrap().device_stats().fetches;
        k.swap_va(
            &mut s,
            crate::CoreId(0),
            crate::SwapRequest { a, b, pages: 1 },
            crate::SwapVaOptions::naive(),
        )
        .unwrap();
        assert_eq!(
            k.far_tier().unwrap().device_stats().fetches,
            fetches_before,
            "the swap itself must not touch the device"
        );
        // Data follows the swap: b now reads the far page's content
        // (fetched on access), a reads the resident one.
        let (vb, _) = k.read_word(&s, crate::CoreId(0), b).unwrap();
        assert_eq!(vb, 0xAAAA);
        let (va_, _) = k.read_word(&s, crate::CoreId(0), a).unwrap();
        assert_eq!(va_, 0xBBBB);
    }

    #[test]
    fn crash_mid_demote_recovers_to_resident() {
        let (mut k, s, va) = setup(8);
        k.set_wal_enabled(true);
        k.write_word(&s, crate::CoreId(0), va, 0x11).unwrap();
        k.set_crash_plans(vec![CrashPlan::first(CrashPoint::MidDemoteWriteback)]);
        let e = k.tier_demote_page(&s, va).unwrap_err();
        assert!(matches!(
            e,
            TierError::Crashed {
                point: CrashPoint::MidDemoteWriteback
            }
        ));
        k.reboot();
        let (restored, _) = k.tier_recover().unwrap();
        assert_eq!(restored, 0, "no WAL record ⇒ page stays resident");
        assert_eq!(k.far_tier().unwrap().slots_in_use(), 0, "orphan reclaimed");
        let (v, _) = k.read_word(&s, crate::CoreId(0), va).unwrap();
        assert_eq!(v, 0x11);
    }

    #[test]
    fn crash_mid_promote_recovers_by_refetching() {
        let (mut k, s, va) = setup(8);
        k.set_wal_enabled(true);
        k.write_word(&s, crate::CoreId(0), va, 0x22).unwrap();
        k.tier_demote_page(&s, va).unwrap();
        let frame = s.translate(va).unwrap().frame();
        k.set_crash_plans(vec![CrashPlan::first(CrashPoint::MidPromoteFetch)]);
        let e = k.tier_promote_frame(frame).unwrap_err();
        assert!(matches!(
            e,
            TierError::Crashed {
                point: CrashPoint::MidPromoteFetch
            }
        ));
        k.reboot();
        let (restored, _) = k.tier_recover().unwrap();
        assert_eq!(restored, 1, "the demote record replays; promote-all refetches");
        assert_eq!(k.far_tier().unwrap().far_count(), 0);
        let (v, _) = k.read_word(&s, crate::CoreId(0), va).unwrap();
        assert_eq!(v, 0x22);
    }
}
