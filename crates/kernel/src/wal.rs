//! Write-ahead journal for PTE-mutating operations (crash consistency).
//!
//! The in-memory [`crate::journal::OpJournal`] makes a GC cycle atomic
//! only while the process survives to roll it back. A crash mid-cycle —
//! mid-batch, mid-shootdown, even mid-rollback — leaves the *address
//! space itself* torn, a failure mode unique to a collector that moves
//! objects by swapping PTEs. This module adds the durable half: a
//! simulated write-ahead log ([`WriteAheadLog`]) that every PTE-mutating
//! operation appends an intent record to *before* applying, bracketed by
//! cycle-begin and commit records.
//!
//! Design rules the recovery state machine relies on:
//!
//! * **Write-ahead** — the intent record for an operation is durable
//!   before the operation mutates memory or page tables. After a crash
//!   the log is therefore a *superset* of the applied operations: at most
//!   the final logged intent may be unapplied.
//! * **Idempotent undo** — intent records store absolute pre-images, not
//!   inverse operations. A [`WalOp::PteSwap`] records the raw pre-swap
//!   PTE of every page (installing them again is a no-op if the swap
//!   never happened — unlike re-swapping, which is an involution and
//!   would corrupt); [`WalOp::Bytes`]/[`WalOp::Word`] record prior
//!   contents. Undo can thus be replayed any number of times — which is
//!   exactly what makes recovery itself restartable after a double crash.
//! * **Checksummed framing** — each record carries a magic word, its
//!   length, epoch, sequence number, and an FNV-1a checksum. A crash
//!   during an append leaves a torn tail that [`WriteAheadLog::scan`]
//!   detects and discards; everything before it is intact by induction.
//!
//! The log stores opaque `Vec<u64>` metadata payloads in begin/commit
//! records so the GC layer can persist heap snapshots without this crate
//! depending on the heap crate.
//!
//! Cost model: intent appends are charged to the calling core through the
//! bandwidth model (they ride the syscall path); begin/commit metadata
//! records are modeled as asynchronous log writes off the critical path.

use crate::fault::CrashPoint;
use crate::state::Kernel;
use svagc_metrics::{Cycles, TraceKind};
use svagc_vmem::{AddressSpace, VirtAddr, VmError, PAGE_SIZE, WORD_BYTES};

/// Magic word opening every WAL record frame.
pub const WAL_MAGIC: u64 = 0x5356_4147_4357_414C; // "SVAGCWAL"

/// Reserved epoch carrying far-tier residency records. GC epochs are
/// always ≥ 1 (even namespaced ones OR a nonzero counter into the low
/// bits), so 0 can never collide; recovery partitions this epoch out
/// before folding the per-cycle state machine.
pub const TIER_EPOCH: u64 = 0;

/// Words of framing around a record payload: magic, payload length,
/// epoch, sequence, kind, trailing checksum.
const FRAME_WORDS: usize = 6;

/// FNV-1a over the little-endian bytes of `words`.
fn fnv_words(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One PTE-mutating operation with the absolute pre-state needed to undo
/// it idempotently (see the module docs for why pre-images, not inverses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A disjoint PTE swap: the raw pre-swap PTE of every page on both
    /// sides. Undo installs the recorded raws — idempotent whether or not
    /// the swap (or a previous undo) already ran.
    PteSwap {
        /// First range base.
        a: VirtAddr,
        /// Second range base.
        b: VirtAddr,
        /// Per-page `(raw PTE at a+i, raw PTE at b+i)` before the swap.
        pre: Vec<(u64, u64)>,
    },
    /// A byte-range overwrite (memmove destination, overlap-rotation
    /// window): the range's contents before the overwrite.
    Bytes {
        /// Start of the overwritten virtual range.
        at: VirtAddr,
        /// Pre-image of the range.
        pre: Vec<u8>,
    },
    /// A single metadata-word write: the word's prior value.
    Word {
        /// The written word's virtual address.
        at: VirtAddr,
        /// Pre-image of the word.
        pre: u64,
    },
}

/// Outcome of decoding a serialized [`WalOp`]: structurally valid ops
/// additionally carry a pre-image checksum (for [`WalOp::Bytes`] and
/// [`WalOp::Word`]) that can mismatch even when the record frame itself
/// validates — the signature of a corrupted or stale intent body.
enum DecodedOp {
    Ok(WalOp),
    BadPreimage,
}

impl WalOp {
    /// Serialize to payload words. `Bytes` and `Word` intents carry a
    /// trailing FNV checksum of their pre-image, verified again at
    /// decode: the *frame* checksum covers the log write, this one covers
    /// the pre-image data recovery is about to install into the heap.
    fn encode(&self) -> Vec<u64> {
        match self {
            WalOp::PteSwap { a, b, pre } => {
                let mut w = vec![1, a.get(), b.get(), pre.len() as u64];
                for &(ra, rb) in pre {
                    w.push(ra);
                    w.push(rb);
                }
                w
            }
            WalOp::Bytes { at, pre } => {
                let mut w = vec![2, at.get(), pre.len() as u64];
                for chunk in pre.chunks(WORD_BYTES as usize) {
                    let mut buf = [0u8; 8];
                    buf[..chunk.len()].copy_from_slice(chunk);
                    w.push(u64::from_le_bytes(buf));
                }
                let sum = fnv_words(&w[3..]);
                w.push(sum);
                w
            }
            WalOp::Word { at, pre } => vec![3, at.get(), *pre, fnv_words(&[*pre])],
        }
    }

    /// Decode from payload words (None on malformed input; `BadPreimage`
    /// when the op parses but its pre-image checksum mismatches).
    fn decode(w: &[u64]) -> Option<DecodedOp> {
        match *w.first()? {
            1 => {
                let pages = *w.get(3)? as usize;
                if w.len() != 4 + 2 * pages {
                    return None;
                }
                let pre = (0..pages).map(|i| (w[4 + 2 * i], w[5 + 2 * i])).collect();
                Some(DecodedOp::Ok(WalOp::PteSwap {
                    a: VirtAddr(w[1]),
                    b: VirtAddr(w[2]),
                    pre,
                }))
            }
            2 => {
                let len = *w.get(2)? as usize;
                let data_words = len.div_ceil(WORD_BYTES as usize);
                if w.len() != 4 + data_words {
                    return None;
                }
                if fnv_words(&w[3..3 + data_words]) != w[3 + data_words] {
                    return Some(DecodedOp::BadPreimage);
                }
                let mut pre = Vec::with_capacity(len);
                for (i, &word) in w[3..3 + data_words].iter().enumerate() {
                    let bytes = word.to_le_bytes();
                    let take = (len - i * WORD_BYTES as usize).min(WORD_BYTES as usize);
                    pre.extend_from_slice(&bytes[..take]);
                }
                Some(DecodedOp::Ok(WalOp::Bytes {
                    at: VirtAddr(w[1]),
                    pre,
                }))
            }
            3 => {
                if w.len() != 4 {
                    return None;
                }
                if fnv_words(&[w[2]]) != w[3] {
                    return Some(DecodedOp::BadPreimage);
                }
                Some(DecodedOp::Ok(WalOp::Word {
                    at: VirtAddr(w[1]),
                    pre: w[2],
                }))
            }
            _ => None,
        }
    }

    /// Log-record bytes this op serializes to (for cost charging).
    /// Computed from the op's shape, NOT from `encode()`: the pre-image
    /// checksum word rides the frame's existing trailer budget, so cost
    /// charges (and therefore every pre-existing run digest) are
    /// independent of it.
    pub fn encoded_bytes(&self) -> u64 {
        let body_words = match self {
            WalOp::PteSwap { pre, .. } => 4 + 2 * pre.len(),
            WalOp::Bytes { pre, .. } => 3 + pre.len().div_ceil(WORD_BYTES as usize),
            WalOp::Word { .. } => 3,
        };
        (body_words + FRAME_WORDS) as u64 * WORD_BYTES
    }

    /// Pages whose content an undo of this op rewrites.
    pub fn pages(&self) -> u64 {
        match self {
            WalOp::PteSwap { pre, .. } => 2 * pre.len() as u64,
            WalOp::Bytes { pre, .. } => (pre.len() as u64).div_ceil(PAGE_SIZE),
            WalOp::Word { .. } => 0,
        }
    }
}

/// The body of a decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// A GC cycle opened; carries the GC layer's serialized pre-cycle
    /// metadata (heap snapshot, roots, content hash — opaque here).
    CycleBegin {
        /// Opaque metadata payload (owned by the GC layer).
        meta: Vec<u64>,
    },
    /// An intent: the operation that was about to be applied when the
    /// record became durable.
    Intent(WalOp),
    /// The cycle committed; carries serialized post-cycle metadata.
    Commit {
        /// Opaque metadata payload (owned by the GC layer).
        meta: Vec<u64>,
    },
    /// The cycle aborted and its in-process rollback completed — the
    /// epoch is resolved (memory is back to its pre-cycle state).
    CycleAborted,
    /// Recovery resolved this epoch after a restart.
    Recovered {
        /// Outcome code (owned by the recovery layer).
        outcome: u64,
    },
    /// A page was demoted to the far tier: `frame`'s contents now live in
    /// device `slot` (residency record, reserved epoch [`TIER_EPOCH`]).
    TierDemote {
        /// The demoted frame.
        frame: u64,
        /// The device slot holding its contents.
        slot: u64,
    },
    /// A far page was promoted back: `frame` holds its contents again and
    /// device `slot` is free (residency record, epoch [`TIER_EPOCH`]).
    TierPromote {
        /// The promoted frame.
        frame: u64,
        /// The device slot that held its contents.
        slot: u64,
    },
    /// An intent record whose frame validates but whose pre-image
    /// checksum does not: the log is lying about what to restore.
    /// Decode-only (never appended); recovery must classify this as a bad
    /// log and fail closed rather than install the corrupt pre-image.
    BadIntent,
}

impl WalPayload {
    fn kind_code(&self) -> u64 {
        match self {
            WalPayload::CycleBegin { .. } => 1,
            WalPayload::Intent(_) => 2,
            WalPayload::Commit { .. } => 3,
            WalPayload::CycleAborted => 4,
            WalPayload::Recovered { .. } => 5,
            WalPayload::TierDemote { .. } => 6,
            WalPayload::TierPromote { .. } => 7,
            // Decode-only: a BadIntent is what a kind-2 record becomes
            // when its pre-image checksum fails; it is never appended.
            WalPayload::BadIntent => 2,
        }
    }

    fn encode(&self) -> Vec<u64> {
        match self {
            WalPayload::CycleBegin { meta } | WalPayload::Commit { meta } => meta.clone(),
            WalPayload::Intent(op) => op.encode(),
            WalPayload::CycleAborted => Vec::new(),
            WalPayload::Recovered { outcome } => vec![*outcome],
            WalPayload::TierDemote { frame, slot } | WalPayload::TierPromote { frame, slot } => {
                vec![*frame, *slot]
            }
            WalPayload::BadIntent => Vec::new(),
        }
    }

    fn decode(kind: u64, payload: &[u64]) -> Option<WalPayload> {
        match kind {
            1 => Some(WalPayload::CycleBegin {
                meta: payload.to_vec(),
            }),
            2 => WalOp::decode(payload).map(|d| match d {
                DecodedOp::Ok(op) => WalPayload::Intent(op),
                DecodedOp::BadPreimage => WalPayload::BadIntent,
            }),
            3 => Some(WalPayload::Commit {
                meta: payload.to_vec(),
            }),
            4 => payload.is_empty().then_some(WalPayload::CycleAborted),
            5 => (payload.len() == 1).then(|| WalPayload::Recovered {
                outcome: payload[0],
            }),
            6 => (payload.len() == 2).then(|| WalPayload::TierDemote {
                frame: payload[0],
                slot: payload[1],
            }),
            7 => (payload.len() == 2).then(|| WalPayload::TierPromote {
                frame: payload[0],
                slot: payload[1],
            }),
            _ => None,
        }
    }
}

/// One intact record recovered from a log scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The GC cycle this record belongs to.
    pub epoch: u64,
    /// Position within the epoch (0 = the begin record).
    pub seq: u64,
    /// The record body.
    pub payload: WalPayload,
}

/// Result of scanning the durable log after a (simulated) restart.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// Every intact record, in log order.
    pub records: Vec<WalRecord>,
    /// A torn (truncated or checksum-failing) tail was found and
    /// discarded — the signature of a crash during an append.
    pub torn_tail: bool,
    /// Intact words consumed by the scan (excludes any torn tail).
    pub intact_words: usize,
}

/// Seeded log-layer mutations used by the crash-matrix suite to prove the
/// recovery oracle has teeth: each silently corrupts the protocol in a way
/// a correct recovery implementation MUST detect and fail closed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMutation {
    /// Never append commit records: committed cycles masquerade as torn.
    SkipCommit,
    /// Silently drop each epoch's first PTE-swap intent record: undo
    /// misses the operation, a live object's pages stay exchanged, and
    /// recovery would hand back a hybrid heap. (PTE swaps specifically:
    /// they always move live content, so the miss is guaranteed visible
    /// to the content-hash oracle.)
    DropIntent,
    /// Flip one bit in the pre-image of each epoch's first `Bytes`/`Word`
    /// intent *after* encoding, then frame it normally: the record's frame
    /// checksum validates, so only the op-level pre-image checksum can
    /// catch it. A recovery that skips the read-back verification would
    /// silently install the corrupt pre-image into the heap.
    CorruptPreimage,
}

impl WalMutation {
    /// Parse `"skip-commit"` / `"drop-intent"` / `"corrupt-preimage"`.
    pub fn parse(s: &str) -> Option<WalMutation> {
        match s {
            "skip-commit" => Some(WalMutation::SkipCommit),
            "drop-intent" => Some(WalMutation::DropIntent),
            "corrupt-preimage" => Some(WalMutation::CorruptPreimage),
            _ => None,
        }
    }
}

/// Counters describing the log's activity (volatile, for reporting).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended (intact).
    pub appends: u64,
    /// Words currently in the durable image.
    pub words: u64,
    /// Intent records suppressed by [`WalMutation::DropIntent`].
    pub intents_dropped: u64,
    /// Commit records suppressed by [`WalMutation::SkipCommit`].
    pub commits_skipped: u64,
    /// Intent pre-images corrupted by [`WalMutation::CorruptPreimage`].
    pub preimages_corrupted: u64,
    /// Far-tier residency records appended (epoch [`TIER_EPOCH`]).
    pub tier_records: u64,
    /// A mid-append crash tore the tail.
    pub torn: bool,
}

/// The simulated durable log. Owned by the [`Kernel`]; survives
/// [`Kernel::reboot`] (it models storage, not RAM).
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    /// The durable image, as 64-bit words.
    words: Vec<u64>,
    enabled: bool,
    /// Epoch of the currently open (begun, not yet resolved) cycle.
    /// Volatile bookkeeping: cleared by reboot; recovery re-derives open
    /// cycles from the scan.
    open_epoch: Option<u64>,
    /// [`WalMutation::DropIntent`] already claimed its victim this epoch.
    epoch_dropped: bool,
    /// [`WalMutation::CorruptPreimage`] already claimed its victim this
    /// epoch.
    epoch_corrupted: bool,
    /// Next sequence number for far-tier residency records (epoch
    /// [`TIER_EPOCH`] has no begin/commit bracket; its records form one
    /// ever-growing replay stream).
    tier_seq: u64,
    /// Next epoch to assign (monotonic across the log's lifetime).
    next_epoch: u64,
    /// Namespace prefix OR-ed into every assigned epoch (fleet tenants get
    /// disjoint epoch spaces so logs can never be confused across tenants).
    epoch_base: u64,
    /// Next sequence number within the open epoch.
    seq: u64,
    mutation: Option<WalMutation>,
    stats: WalStats,
}

impl WriteAheadLog {
    /// A fresh, disabled log.
    pub fn new() -> WriteAheadLog {
        WriteAheadLog::default()
    }

    /// Is logging armed?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Is a cycle currently open (intents are being recorded)?
    pub fn cycle_open(&self) -> bool {
        self.enabled && self.open_epoch.is_some()
    }

    /// Epoch of the open cycle, if any.
    pub fn open_epoch(&self) -> Option<u64> {
        self.open_epoch
    }

    /// Volatile state lost in a reboot: the open-cycle cursor. The durable
    /// image and the epoch counter survive.
    pub(crate) fn drop_volatile(&mut self) {
        self.open_epoch = None;
        self.seq = 0;
    }

    /// Append a framed record; when `tear_at` is set, write only that many
    /// words of the frame (a crash mid-append) and mark the log torn.
    fn append(&mut self, epoch: u64, seq: u64, payload: &WalPayload, tear: bool) {
        let mut body = payload.encode();
        let kind = payload.kind_code();
        if self.mutation == Some(WalMutation::CorruptPreimage)
            && !self.epoch_corrupted
            && matches!(
                payload,
                WalPayload::Intent(WalOp::Bytes { .. } | WalOp::Word { .. })
            )
        {
            // Teeth mutation: flip a bit in the last pre-image data word
            // (never the op checksum itself), then frame the corrupted
            // body normally — the frame checksum below is computed over
            // the *corrupted* body, so only the op-level pre-image
            // checksum can expose the lie.
            let i = body.len() - 2;
            body[i] ^= 1;
            self.epoch_corrupted = true;
            self.stats.preimages_corrupted += 1;
        }
        let mut frame = Vec::with_capacity(FRAME_WORDS + body.len());
        frame.push(WAL_MAGIC);
        frame.push(body.len() as u64);
        frame.push(epoch);
        frame.push(seq);
        frame.push(kind);
        frame.extend_from_slice(&body);
        let mut sum_input = vec![body.len() as u64, epoch, seq, kind];
        sum_input.extend_from_slice(&body);
        frame.push(fnv_words(&sum_input));
        if tear {
            // Power failed partway through the log write: keep a strict
            // prefix (at least the magic so the tear is visible, never the
            // checksum so the record can't validate).
            let keep = (frame.len() / 2).max(1);
            self.words.extend_from_slice(&frame[..keep]);
            self.stats.torn = true;
        } else {
            self.words.extend_from_slice(&frame);
            self.stats.appends += 1;
        }
        self.stats.words = self.words.len() as u64;
    }

    /// Decode every intact record; stop at (and flag) a torn tail.
    pub fn scan(&self) -> WalScan {
        let w = &self.words;
        let mut out = WalScan::default();
        let mut at = 0usize;
        while at < w.len() {
            let intact = (|| {
                if w.len() - at < FRAME_WORDS || w[at] != WAL_MAGIC {
                    return None;
                }
                let body_len = w[at + 1] as usize;
                let total = FRAME_WORDS + body_len;
                if w.len() - at < total {
                    return None;
                }
                let (epoch, seq, kind) = (w[at + 2], w[at + 3], w[at + 4]);
                let body = &w[at + 5..at + 5 + body_len];
                let mut sum_input = vec![body_len as u64, epoch, seq, kind];
                sum_input.extend_from_slice(body);
                if w[at + total - 1] != fnv_words(&sum_input) {
                    return None;
                }
                let payload = WalPayload::decode(kind, body)?;
                Some((total, WalRecord { epoch, seq, payload }))
            })();
            match intact {
                Some((total, rec)) => {
                    out.records.push(rec);
                    at += total;
                    out.intact_words = at;
                }
                None => {
                    out.torn_tail = true;
                    return out;
                }
            }
        }
        out
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            words: self.words.len() as u64,
            ..self.stats
        }
    }
}

impl Kernel {
    /// Arm (or disarm) the write-ahead log. Arming clears any previous log
    /// image — the log is per-boot-lineage, like mounting a fresh journal
    /// device. Disabled by default: fault-free baselines pay nothing.
    pub fn set_wal_enabled(&mut self, on: bool) {
        self.wal = WriteAheadLog {
            enabled: on,
            epoch_base: self.wal.epoch_base,
            ..WriteAheadLog::default()
        };
    }

    /// Give this kernel's WAL a per-tenant epoch namespace: every epoch it
    /// assigns carries `ns` in its top 16 bits, so two tenants' logs can
    /// never collide or be confused during fleet-level forensics. The
    /// default namespace 0 leaves single-JVM epochs (1, 2, 3, …) unchanged.
    pub fn set_wal_namespace(&mut self, ns: u16) {
        self.wal.epoch_base = (ns as u64) << 48;
    }

    /// Is the write-ahead log armed?
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_enabled()
    }

    /// Is a logged cycle currently open?
    pub fn wal_cycle_open(&self) -> bool {
        self.wal.cycle_open()
    }

    /// Install a seeded log mutation (test teeth; see [`WalMutation`]).
    pub fn set_wal_mutation(&mut self, m: Option<WalMutation>) {
        self.wal.mutation = m;
    }

    /// Open a cycle: append a begin record carrying the GC layer's opaque
    /// metadata. Returns the epoch, or `None` when the log is disarmed.
    pub fn wal_cycle_begin(&mut self, meta: Vec<u64>) -> Option<u64> {
        if !self.wal.enabled {
            return None;
        }
        self.wal.next_epoch += 1;
        let epoch = self.wal.epoch_base | self.wal.next_epoch;
        self.wal.open_epoch = Some(epoch);
        self.wal.epoch_dropped = false;
        self.wal.epoch_corrupted = false;
        self.wal.seq = 0;
        self.wal.append(epoch, 0, &WalPayload::CycleBegin { meta }, false);
        self.wal.seq = 1;
        self.trace.instant(
            TraceKind::WalRecord,
            Cycles::ZERO,
            0,
            &[("kind", 1), ("epoch", epoch)],
        );
        Some(epoch)
    }

    /// Commit the open cycle: append a commit record with post-cycle
    /// metadata and close the epoch. No-op when no cycle is open.
    pub fn wal_commit(&mut self, meta: Vec<u64>) {
        let Some(epoch) = self.wal.open_epoch.take() else {
            return;
        };
        if self.wal.mutation == Some(WalMutation::SkipCommit) {
            self.wal.stats.commits_skipped += 1;
            return;
        }
        let seq = self.wal.seq;
        self.wal.append(epoch, seq, &WalPayload::Commit { meta }, false);
        self.trace.instant(
            TraceKind::WalRecord,
            Cycles::ZERO,
            0,
            &[("kind", 3), ("epoch", epoch)],
        );
    }

    /// Mark the open cycle aborted-and-rolled-back (its in-process undo
    /// completed, so the epoch is resolved). No-op when no cycle is open.
    pub fn wal_cycle_aborted(&mut self) {
        let Some(epoch) = self.wal.open_epoch.take() else {
            return;
        };
        let seq = self.wal.seq;
        self.wal.append(epoch, seq, &WalPayload::CycleAborted, false);
        self.trace.instant(
            TraceKind::WalRecord,
            Cycles::ZERO,
            0,
            &[("kind", 4), ("epoch", epoch)],
        );
    }

    /// Append a recovery-resolution record for `epoch` (recovery replayed
    /// its undo/redo and verified the result).
    pub fn wal_mark_recovered(&mut self, epoch: u64, outcome: u64) {
        if !self.wal.enabled {
            return;
        }
        self.wal.append(epoch, u64::MAX, &WalPayload::Recovered { outcome }, false);
        self.trace.instant(
            TraceKind::WalRecord,
            Cycles::ZERO,
            0,
            &[("kind", 5), ("epoch", epoch), ("outcome", outcome)],
        );
    }

    /// Scan the durable log (the first thing recovery does after a
    /// restart).
    pub fn wal_scan(&self) -> WalScan {
        self.wal.scan()
    }

    /// Append a far-tier residency record ([`WalPayload::TierDemote`] or
    /// [`WalPayload::TierPromote`]) under the reserved [`TIER_EPOCH`].
    /// Unlike intents these are not bracketed by a cycle — they form one
    /// append-only replay stream from which recovery rebuilds the
    /// residency map. Charged through the bandwidth model like intents.
    pub(crate) fn wal_tier_record(&mut self, payload: WalPayload) -> Cycles {
        debug_assert!(matches!(
            payload,
            WalPayload::TierDemote { .. } | WalPayload::TierPromote { .. }
        ));
        if !self.wal.enabled {
            return Cycles::ZERO;
        }
        let seq = self.wal.tier_seq;
        self.wal.tier_seq += 1;
        let kind = payload.kind_code();
        let bytes = (2 + FRAME_WORDS) as u64 * WORD_BYTES;
        self.wal.append(TIER_EPOCH, seq, &payload, false);
        self.wal.stats.tier_records += 1;
        self.trace.instant(
            TraceKind::WalRecord,
            Cycles::ZERO,
            0,
            &[("kind", kind), ("epoch", TIER_EPOCH)],
        );
        self.bandwidth.copy_cycles(&self.machine, bytes)
    }

    /// The log's activity counters.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Append an intent record for `op` ahead of applying it. Charges the
    /// caller for the log write through the bandwidth model. When
    /// `may_crash` is set, a pending [`CrashPoint::MidLogAppend`] fires
    /// here: the frame is torn mid-write and the error tells the caller
    /// the machine is gone (the operation must NOT be applied).
    pub(crate) fn wal_log_op(
        &mut self,
        op: WalOp,
        may_crash: bool,
    ) -> Result<Cycles, CrashPoint> {
        if !self.wal.cycle_open() {
            return Ok(Cycles::ZERO);
        }
        if self.wal.mutation == Some(WalMutation::DropIntent)
            && !self.wal.epoch_dropped
            && matches!(op, WalOp::PteSwap { .. })
        {
            // Teeth mutation: the epoch's first PTE-swap intent vanishes.
            // Keep the sequence counter moving so exactly one record per
            // epoch is lost.
            self.wal.epoch_dropped = true;
            self.wal.seq += 1;
            self.wal.stats.intents_dropped += 1;
            return Ok(Cycles::ZERO);
        }
        let bytes = op.encoded_bytes();
        let epoch = self.wal.open_epoch.expect("cycle_open checked above");
        let seq = self.wal.seq;
        self.wal.seq += 1;
        let tear = may_crash && self.crash_fire(CrashPoint::MidLogAppend);
        self.wal.append(epoch, seq, &WalPayload::Intent(op), tear);
        if tear {
            return Err(CrashPoint::MidLogAppend);
        }
        Ok(self.bandwidth.copy_cycles(&self.machine, bytes))
    }

    /// Apply the idempotent undo of one WAL op: install the recorded
    /// pre-images. Used by recovery (after a reboot) — functional vmem
    /// path, no fault injection, no TLB consults, no re-journaling.
    /// Returns `(cycles, pages rewritten)`.
    pub fn wal_undo_op(
        &mut self,
        space: &mut AddressSpace,
        op: &WalOp,
    ) -> Result<(Cycles, u64), VmError> {
        let costs = self.machine.costs;
        let mut t = Cycles::ZERO;
        match op {
            WalOp::PteSwap { a, b, pre } => {
                for (i, &(ra, rb)) in pre.iter().enumerate() {
                    let i = i as u64;
                    space.page_table_mut().write_pte_raw(a.add_pages(i), ra)?;
                    space.page_table_mut().write_pte_raw(b.add_pages(i), rb)?;
                    t += Cycles(2 * costs.pte_swap);
                }
            }
            WalOp::Bytes { at, pre } => {
                self.vmem.write_bytes(space, *at, pre)?;
                t += self.bandwidth.copy_cycles(&self.machine, pre.len() as u64);
            }
            WalOp::Word { at, pre } => {
                self.vmem.write_u64(space, *at, *pre)?;
                t += Cycles(costs.mem_access);
            }
        }
        Ok((t, op.pages()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: WalPayload) {
        let mut log = WriteAheadLog {
            enabled: true,
            ..WriteAheadLog::default()
        };
        log.append(7, 3, &p, false);
        let scan = log.scan();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 1);
        let r = &scan.records[0];
        assert_eq!((r.epoch, r.seq), (7, 3));
        assert_eq!(r.payload, p);
    }

    #[test]
    fn every_payload_roundtrips() {
        roundtrip(WalPayload::CycleBegin {
            meta: vec![1, 2, 3, u64::MAX],
        });
        roundtrip(WalPayload::Intent(WalOp::PteSwap {
            a: VirtAddr(0x1000),
            b: VirtAddr(0x9000),
            pre: vec![(0xAA, 0xBB), (0xCC, 0xDD)],
        }));
        roundtrip(WalPayload::Intent(WalOp::Bytes {
            at: VirtAddr(0x2000),
            pre: (0..100u8).collect(), // deliberately not word-aligned
        }));
        roundtrip(WalPayload::Intent(WalOp::Word {
            at: VirtAddr(0x3008),
            pre: 0xDEAD_BEEF,
        }));
        roundtrip(WalPayload::Commit { meta: Vec::new() });
        roundtrip(WalPayload::CycleAborted);
        roundtrip(WalPayload::Recovered { outcome: 2 });
        roundtrip(WalPayload::TierDemote { frame: 17, slot: 3 });
        roundtrip(WalPayload::TierPromote { frame: 17, slot: 3 });
    }

    #[test]
    fn corrupt_preimage_mutation_yields_bad_intent_not_torn_tail() {
        // The mutation flips a pre-image bit but reframes with a valid
        // frame checksum: the scan must decode the record (no torn tail)
        // and surface it as BadIntent via the op-level checksum.
        for op in [
            WalOp::Word {
                at: VirtAddr(0x1000),
                pre: 0xFEED,
            },
            WalOp::Bytes {
                at: VirtAddr(0x2000),
                pre: vec![7; 100],
            },
        ] {
            let mut log = WriteAheadLog {
                enabled: true,
                mutation: Some(WalMutation::CorruptPreimage),
                ..WriteAheadLog::default()
            };
            log.append(1, 1, &WalPayload::Intent(op), false);
            assert_eq!(log.stats().preimages_corrupted, 1);
            let scan = log.scan();
            assert!(!scan.torn_tail, "frame checksum must still validate");
            assert_eq!(scan.records.len(), 1);
            assert_eq!(scan.records[0].payload, WalPayload::BadIntent);
        }
        // PteSwap intents are not covered by the mutation (no op checksum).
        let mut log = WriteAheadLog {
            enabled: true,
            mutation: Some(WalMutation::CorruptPreimage),
            ..WriteAheadLog::default()
        };
        log.append(
            1,
            1,
            &WalPayload::Intent(WalOp::PteSwap {
                a: VirtAddr(0x1000),
                b: VirtAddr(0x2000),
                pre: vec![(1, 2)],
            }),
            false,
        );
        assert_eq!(log.stats().preimages_corrupted, 0);
        assert!(matches!(
            log.scan().records[0].payload,
            WalPayload::Intent(WalOp::PteSwap { .. })
        ));
    }

    #[test]
    fn encoded_bytes_excludes_the_preimage_checksum_word() {
        // Cost charges must not move with the S2 checksum word: Word
        // encodes to 4 words but charges for 3 + framing.
        let w = WalOp::Word {
            at: VirtAddr(0x1000),
            pre: 9,
        };
        assert_eq!(w.encode().len(), 4);
        assert_eq!(w.encoded_bytes(), (3 + FRAME_WORDS) as u64 * WORD_BYTES);
        let b = WalOp::Bytes {
            at: VirtAddr(0x2000),
            pre: vec![1; 64],
        };
        assert_eq!(b.encode().len(), 3 + 8 + 1);
        assert_eq!(b.encoded_bytes(), (3 + 8 + FRAME_WORDS) as u64 * WORD_BYTES);
    }

    #[test]
    fn tier_records_live_in_the_reserved_epoch() {
        use svagc_metrics::MachineConfig;
        let mut k = Kernel::new(MachineConfig::i5_7600(), 16);
        k.set_wal_enabled(true);
        k.set_wal_namespace(5);
        let c = k.wal_tier_record(WalPayload::TierDemote { frame: 4, slot: 0 });
        assert!(c > Cycles::ZERO, "tier records are cost-charged");
        k.wal_tier_record(WalPayload::TierPromote { frame: 4, slot: 0 });
        let scan = k.wal_scan();
        assert_eq!(scan.records.len(), 2);
        // Namespacing never touches the reserved epoch, and seq increments.
        assert!(scan.records.iter().all(|r| r.epoch == TIER_EPOCH));
        assert_eq!(
            scan.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(k.wal_stats().tier_records, 2);
    }

    #[test]
    fn epoch_namespace_prefixes_every_epoch() {
        use svagc_metrics::MachineConfig;
        let mut k = Kernel::new(MachineConfig::i5_7600(), 16);
        k.set_wal_enabled(true);
        k.set_wal_namespace(3);
        let e1 = k.wal_cycle_begin(vec![]).unwrap();
        k.wal_commit(vec![]);
        let e2 = k.wal_cycle_begin(vec![]).unwrap();
        k.wal_commit(vec![]);
        assert_eq!(e1, (3u64 << 48) | 1);
        assert_eq!(e2, (3u64 << 48) | 2);
        // Re-arming the log keeps the namespace; default stays 0.
        k.set_wal_enabled(true);
        assert_eq!(k.wal_cycle_begin(vec![]).unwrap(), (3u64 << 48) | 1);
        let mut k0 = Kernel::new(MachineConfig::i5_7600(), 16);
        k0.set_wal_enabled(true);
        assert_eq!(k0.wal_cycle_begin(vec![]).unwrap(), 1);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let mut log = WriteAheadLog {
            enabled: true,
            ..WriteAheadLog::default()
        };
        log.append(1, 0, &WalPayload::CycleBegin { meta: vec![9] }, false);
        log.append(
            1,
            1,
            &WalPayload::Intent(WalOp::Word {
                at: VirtAddr(0x1000),
                pre: 5,
            }),
            false,
        );
        // Crash mid-append of the third record.
        log.append(
            1,
            2,
            &WalPayload::Intent(WalOp::Bytes {
                at: VirtAddr(0x2000),
                pre: vec![1; 64],
            }),
            true,
        );
        let scan = log.scan();
        assert!(scan.torn_tail, "truncated frame must be flagged");
        assert_eq!(scan.records.len(), 2, "intact prefix fully decoded");
        assert!(log.stats().torn);
    }

    #[test]
    fn corrupted_checksum_is_a_torn_tail() {
        let mut log = WriteAheadLog {
            enabled: true,
            ..WriteAheadLog::default()
        };
        log.append(1, 0, &WalPayload::CycleAborted, false);
        let last = log.words.len() - 1;
        log.words[last] ^= 1;
        let scan = log.scan();
        assert!(scan.torn_tail);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn empty_log_scans_clean() {
        let log = WriteAheadLog::new();
        let scan = log.scan();
        assert!(!scan.torn_tail);
        assert!(scan.records.is_empty());
    }
}
