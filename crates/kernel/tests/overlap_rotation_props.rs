//! Property test for the Algorithm 2 overlap rotation: the gcd-cycle
//! PTE rotation must agree, page for page, with a naive copy-based
//! reference over randomized overlap geometries.
//!
//! The reference model is the permutation Algorithm 2 claims to realize
//! (σ(i) = i+n for i < δ, i-δ otherwise, over the n+δ window), executed
//! the obvious way — build the whole result in a scratch buffer, then
//! compare. The kernel path instead rotates gcd(δ, n) cycles in place
//! with one temporary; any indexing bug in `find_swap_place`, any cycle
//! fused or dropped, and the two disagree.
//!
//! Offline std-only: randomness comes from the deterministic `SimRng`
//! (splitmix64), so every failure reproduces from the printed seed.

use svagc_kernel::{CoreId, Kernel, SwapRequest, SwapVaOptions};
use svagc_metrics::{MachineConfig, SimRng};
use svagc_vmem::{AddressSpace, Asid};

/// Run one geometry: an (n, δ) overlapping move, operands optionally
/// reversed, checked against the copy-based reference.
fn check_geometry(n: u64, delta: u64, reversed: bool, seed: u64) {
    assert!(delta >= 1 && delta < n, "test generator bug: δ must be 1..n");
    let window = n + delta;
    let mut k = Kernel::new(MachineConfig::i5_7600(), (window as u32 + 8) * 2);
    let mut s = AddressSpace::new(Asid(1));
    let base = k.vmem.alloc_region(&mut s, window).unwrap();

    // Stamp every page with a unique random value.
    let mut rng = SimRng::seed_from_u64(seed);
    let old: Vec<u64> = (0..window).map(|_| rng.next_u64()).collect();
    for (i, &v) in old.iter().enumerate() {
        k.vmem.write_u64(&s, base.add_pages(i as u64), v).unwrap();
    }

    // Naive copy-based reference of the Algorithm 2 move semantics: the
    // low range receives the old upper range, the displaced low pages
    // park at the top of the window.
    let mut expect = vec![0u64; window as usize];
    for i in 0..n as usize {
        expect[i] = old[i + delta as usize];
    }
    for j in 0..delta as usize {
        expect[n as usize + j] = old[j];
    }

    let (a, b) = if reversed {
        (base.add_pages(delta), base)
    } else {
        (base, base.add_pages(delta))
    };
    let pte_swaps_before = k.perf.pte_swaps;
    k.swap_va(&mut s, CoreId(0), SwapRequest { a, b, pages: n }, SwapVaOptions::naive())
        .unwrap();

    let got: Vec<u64> = (0..window)
        .map(|i| k.vmem.read_u64(&s, base.add_pages(i)).unwrap())
        .collect();
    assert_eq!(
        got, expect,
        "rotation disagrees with the copy reference \
         (n={n}, delta={delta}, reversed={reversed}, seed={seed})"
    );
    // Algorithm 2's complexity claim: exactly one PTE write per window
    // slot, O(n + δ) instead of O(2n).
    assert_eq!(
        k.perf.pte_swaps - pte_swaps_before,
        window,
        "PTE writes must be n + delta (n={n}, delta={delta})"
    );
}

#[test]
fn randomized_geometries_match_copy_reference() {
    // 200 random (n, δ) shapes, both operand orders, fresh stamps each.
    let mut rng = SimRng::seed_from_u64(0xA1_60C2);
    for trial in 0..200u64 {
        let n = rng.gen_range(2..=24u64);
        let delta = rng.gen_range(1..n);
        let reversed = rng.gen_bool(0.5);
        check_geometry(n, delta, reversed, 0x5EED_0000 + trial);
    }
}

#[test]
fn coprime_and_non_coprime_offsets() {
    // gcd(δ, n) = 1 rotates one long cycle; gcd(δ, n) = δ rotates many
    // short ones. Both decompositions must realize the same permutation.
    for &(n, delta) in &[
        (8, 3),   // coprime: single cycle of length 11
        (8, 7),   // coprime, δ = n - 1
        (12, 8),  // gcd 4
        (12, 6),  // gcd 6: δ divides n
        (9, 3),   // gcd 3
        (16, 4),  // power-of-two split
        (24, 18), // large non-coprime
        (13, 5),  // both prime-ish
    ] {
        check_geometry(n, delta, false, 7_000 + n * 100 + delta);
        check_geometry(n, delta, true, 8_000 + n * 100 + delta);
    }
}

#[test]
fn delta_edge_cases() {
    // δ = 1 (minimal slide, the common compaction case) and δ = n - 1
    // (barely overlapping) across a sweep of sizes.
    for n in 2..=24u64 {
        check_geometry(n, 1, false, 900 + n);
        if n > 2 {
            check_geometry(n, n - 1, false, 950 + n);
        }
    }
}
