//! Property tests of SwapVA: content exchange for arbitrary disjoint
//! ranges, move semantics for arbitrary overlaps, aggregation equivalence,
//! and memmove correctness under arbitrary overlap.


#![cfg(feature = "proptest-tests")]
// Gated off by default: `proptest` is unavailable in the offline build.
// Restore the dev-dependency and run with `--features proptest-tests`.

use proptest::prelude::*;
use svagc_kernel::{CoreId, Kernel, SwapRequest, SwapVaOptions};
use svagc_metrics::MachineConfig;
use svagc_vmem::{AddressSpace, Asid, VirtAddr};

const CORE: CoreId = CoreId(0);

fn setup(frames: u32) -> (Kernel, AddressSpace) {
    (
        Kernel::new(MachineConfig::i5_7600(), frames),
        AddressSpace::new(Asid(1)),
    )
}

fn stamp_pages(k: &mut Kernel, s: &AddressSpace, base: VirtAddr, pages: u64, tag: u64) {
    for i in 0..pages {
        k.vmem.write_u64(s, base.add_pages(i), tag + i).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disjoint swap exchanges page contents exactly, for any size.
    #[test]
    fn disjoint_swap_exchanges(pages in 1u64..50) {
        let (mut k, mut s) = setup(2 * 50 + 8);
        let a = k.vmem.alloc_region(&mut s, pages).unwrap();
        let b = k.vmem.alloc_region(&mut s, pages).unwrap();
        stamp_pages(&mut k, &s, a, pages, 1_000);
        stamp_pages(&mut k, &s, b, pages, 9_000);
        let req = SwapRequest { a, b, pages };
        k.swap_va(&mut s, CORE, req, SwapVaOptions::naive()).unwrap();
        for i in 0..pages {
            prop_assert_eq!(k.vmem.read_u64(&s, a.add_pages(i)).unwrap(), 9_000 + i);
            prop_assert_eq!(k.vmem.read_u64(&s, b.add_pages(i)).unwrap(), 1_000 + i);
        }
        prop_assert_eq!(k.perf.bytes_copied, 0);
    }

    /// Overlap rotation: for any (n, delta) with 0 < delta < n, the lower
    /// range receives exactly the old upper range, and the window remains
    /// a permutation of its original frames.
    #[test]
    fn overlap_rotation_moves(n in 2u64..48, delta_frac in 0.01f64..0.99) {
        let delta = ((n as f64 * delta_frac) as u64).clamp(1, n - 1);
        let window = n + delta;
        let (mut k, mut s) = setup((window + 8) as u32);
        let base = k.vmem.alloc_region(&mut s, window).unwrap();
        stamp_pages(&mut k, &s, base, window, 500);
        let req = SwapRequest { a: base, b: base.add_pages(delta), pages: n };
        prop_assert!(req.overlaps());
        k.swap_va(&mut s, CORE, req, SwapVaOptions::naive()).unwrap();
        // Move semantics: lower n pages = old upper n pages.
        for i in 0..n {
            prop_assert_eq!(
                k.vmem.read_u64(&s, base.add_pages(i)).unwrap(),
                500 + delta + i
            );
        }
        // Permutation: all original stamps present exactly once.
        let mut seen: Vec<u64> = (0..window)
            .map(|i| k.vmem.read_u64(&s, base.add_pages(i)).unwrap())
            .collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..window).map(|i| 500 + i).collect();
        prop_assert_eq!(seen, expect);
        // O(n + delta) PTE writes.
        prop_assert_eq!(k.perf.pte_swaps, window);
    }

    /// A batch call is functionally identical to issuing its requests one
    /// by one (and cheaper).
    #[test]
    fn aggregation_equivalence(
        sizes in proptest::collection::vec(1u64..6, 1..12),
    ) {
        let total: u64 = sizes.iter().sum();
        let (mut k1, mut s1) = setup((2 * total + 8) as u32);
        let (mut k2, mut s2) = setup((2 * total + 8) as u32);
        let mut reqs1 = Vec::new();
        let mut reqs2 = Vec::new();
        for (idx, &pages) in sizes.iter().enumerate() {
            let a1 = k1.vmem.alloc_region(&mut s1, pages).unwrap();
            let b1 = k1.vmem.alloc_region(&mut s1, pages).unwrap();
            let a2 = k2.vmem.alloc_region(&mut s2, pages).unwrap();
            let b2 = k2.vmem.alloc_region(&mut s2, pages).unwrap();
            prop_assert_eq!(a1, a2);
            stamp_pages(&mut k1, &s1, a1, pages, idx as u64 * 100);
            stamp_pages(&mut k2, &s2, a2, pages, idx as u64 * 100);
            reqs1.push(SwapRequest { a: a1, b: b1, pages });
            reqs2.push(SwapRequest { a: a2, b: b2, pages });
        }
        let opts = SwapVaOptions::pinned();
        let mut separated = svagc_metrics::Cycles::ZERO;
        for r in &reqs1 {
            separated += k1.swap_va(&mut s1, CORE, *r, opts).unwrap().0;
        }
        let (aggregated, _) = k2.swap_va_batch(&mut s2, CORE, &reqs2, opts).unwrap();
        // Same final memory contents.
        for (idx, r) in reqs1.iter().enumerate() {
            for i in 0..r.pages {
                let v1 = k1.vmem.read_u64(&s1, r.b.add_pages(i)).unwrap();
                let v2 = k2.vmem.read_u64(&s2, reqs2[idx].b.add_pages(i)).unwrap();
                prop_assert_eq!(v1, v2);
            }
        }
        // Aggregation saves (n-1) syscall entries.
        let saved = separated.get() as i64 - aggregated.get() as i64;
        let expected = (reqs1.len() as i64 - 1)
            * (k1.machine.costs.syscall_entry_exit + k1.machine.costs.tlb_flush_local) as i64;
        prop_assert_eq!(saved, expected);
    }

    /// memmove is byte-exact for any length and any (possibly
    /// overlapping) src/dst offsets.
    #[test]
    fn memmove_byte_exact(
        len in 1u64..20_000,
        src_off in 0u64..8_000,
        dst_off in 0u64..8_000,
    ) {
        let (mut k, mut s) = setup(64);
        let region = k.vmem.alloc_region(&mut s, 8).unwrap();
        let len = len.min(8 * 4096 - src_off.max(dst_off));
        let data: Vec<u8> = (0..len).map(|x| (x * 31 % 251) as u8).collect();
        k.vmem.write_bytes(&s, region + src_off, &data).unwrap();
        k.memmove(&s, CORE, region + src_off, region + dst_off, len).unwrap();
        let mut out = vec![0u8; len as usize];
        k.vmem.read_bytes(&s, region + dst_off, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    /// Disjoint swap is an involution (overlap is a *move*, so this law
    /// applies only to disjoint pairs).
    #[test]
    fn disjoint_swap_is_involutive(pages in 1u64..30) {
        let (mut k, mut s) = setup(2 * 30 + 8);
        let a = k.vmem.alloc_region(&mut s, pages).unwrap();
        let b = k.vmem.alloc_region(&mut s, pages).unwrap();
        stamp_pages(&mut k, &s, a, pages, 111);
        stamp_pages(&mut k, &s, b, pages, 777);
        let req = SwapRequest { a, b, pages };
        k.swap_va(&mut s, CORE, req, SwapVaOptions::pinned()).unwrap();
        k.swap_va(&mut s, CORE, req, SwapVaOptions::pinned()).unwrap();
        for i in 0..pages {
            prop_assert_eq!(k.vmem.read_u64(&s, a.add_pages(i)).unwrap(), 111 + i);
            prop_assert_eq!(k.vmem.read_u64(&s, b.add_pages(i)).unwrap(), 777 + i);
        }
    }
}

/// Deterministic edge cases that random sampling is unlikely to hit.
#[cfg(test)]
mod edges {
    use super::*;
    use svagc_vmem::{PteFlags, Pte, FrameId};

    /// Ranges in different PGD subtrees (512 GiB apart): the walk crosses
    /// every table level and the PMD caches never help across operands.
    #[test]
    fn swap_across_pgd_subtrees() {
        let (mut k, mut s) = setup(64);
        // Map 4 pages at two far-apart canonical addresses by hand.
        let a = VirtAddr(1u64 << 39);
        let b = VirtAddr(3u64 << 39);
        for i in 0..4u64 {
            let fa = k.vmem.frames.alloc().unwrap();
            let fb = k.vmem.frames.alloc().unwrap();
            s.page_table_mut()
                .map(a.add_pages(i), Pte::map(fa, PteFlags::WRITABLE))
                .unwrap();
            s.page_table_mut()
                .map(b.add_pages(i), Pte::map(fb, PteFlags::WRITABLE))
                .unwrap();
            k.vmem.write_u64(&s, a.add_pages(i), 100 + i).unwrap();
            k.vmem.write_u64(&s, b.add_pages(i), 200 + i).unwrap();
        }
        let req = SwapRequest { a, b, pages: 4 };
        assert!(!req.overlaps());
        k.swap_va(&mut s, CORE, req, SwapVaOptions::naive()).unwrap();
        for i in 0..4u64 {
            assert_eq!(k.vmem.read_u64(&s, a.add_pages(i)).unwrap(), 200 + i);
            assert_eq!(k.vmem.read_u64(&s, b.add_pages(i)).unwrap(), 100 + i);
        }
        // Four PUD+PMD+PTE table triples were materialized (2 subtrees x
        // 1 chain each for a and b within one PGD entry each).
        assert!(s.page_table().tables_allocated() >= 6);
    }

    /// The fully-unoptimized configuration (no PMD cache, no overlap
    /// support, global flushes) still swaps disjoint ranges correctly and
    /// costs strictly more than the optimized one.
    #[test]
    fn unoptimized_is_correct_and_slower() {
        let (mut k1, mut s1) = setup(2 * 64 + 8);
        let a1 = k1.vmem.alloc_region(&mut s1, 64).unwrap();
        let b1 = k1.vmem.alloc_region(&mut s1, 64).unwrap();
        stamp_pages(&mut k1, &s1, a1, 64, 10);
        let req1 = SwapRequest { a: a1, b: b1, pages: 64 };
        let (slow, _) = k1
            .swap_va(&mut s1, CORE, req1, SwapVaOptions::unoptimized())
            .unwrap();
        for i in 0..64 {
            assert_eq!(k1.vmem.read_u64(&s1, b1.add_pages(i)).unwrap(), 10 + i);
        }

        let (mut k2, mut s2) = setup(2 * 64 + 8);
        let a2 = k2.vmem.alloc_region(&mut s2, 64).unwrap();
        let b2 = k2.vmem.alloc_region(&mut s2, 64).unwrap();
        let req2 = SwapRequest { a: a2, b: b2, pages: 64 };
        let (fast, _) = k2
            .swap_va(&mut s2, CORE, req2, SwapVaOptions::pinned())
            .unwrap();
        assert!(slow.get() > fast.get(), "unopt {slow} vs opt {fast}");
    }

    /// A swap over a range that straddles a PMD boundary (the 512-page
    /// line): the per-operand PMD cache must miss exactly once more.
    #[test]
    fn swap_straddling_pmd_boundary() {
        let (mut k, mut s) = setup(3000);
        // Allocate 600 pages so the range crosses one 2 MiB boundary.
        let a = k.vmem.alloc_region(&mut s, 600).unwrap();
        let b = k.vmem.alloc_region(&mut s, 600).unwrap();
        stamp_pages(&mut k, &s, a, 600, 5_000);
        stamp_pages(&mut k, &s, b, 600, 9_000);
        let req = SwapRequest { a, b, pages: 600 };
        k.swap_va(&mut s, CORE, req, SwapVaOptions::pinned()).unwrap();
        for i in (0..600).step_by(97) {
            assert_eq!(k.vmem.read_u64(&s, a.add_pages(i)).unwrap(), 9_000 + i);
            assert_eq!(k.vmem.read_u64(&s, b.add_pages(i)).unwrap(), 5_000 + i);
        }
        // Each operand: 600 walks, of which at most a handful are full
        // (one per PTE-table crossed), the rest PMD-cache hits.
        assert!(k.perf.pmd_cache_hits >= 2 * (600 - 4));
    }

    /// FrameId::default and Pte raw-roundtrip interplay under swaps of the
    /// zero frame (frame 0 is a valid frame, not a sentinel).
    #[test]
    fn frame_zero_is_swappable() {
        let (mut k, mut s) = setup(8);
        // The first region gets frame 0.
        let a = k.vmem.alloc_region(&mut s, 1).unwrap();
        let b = k.vmem.alloc_region(&mut s, 1).unwrap();
        assert_eq!(s.page_table().pte(a).unwrap().frame(), FrameId(0));
        k.vmem.write_u64(&s, a, 0xF0).unwrap();
        k.vmem.write_u64(&s, b, 0xF1).unwrap();
        let req = SwapRequest { a, b, pages: 1 };
        k.swap_va(&mut s, CORE, req, SwapVaOptions::naive()).unwrap();
        assert_eq!(s.page_table().pte(b).unwrap().frame(), FrameId(0));
        assert_eq!(k.vmem.read_u64(&s, a).unwrap(), 0xF1);
        assert_eq!(k.vmem.read_u64(&s, b).unwrap(), 0xF0);
    }
}
