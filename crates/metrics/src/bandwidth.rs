//! Shared DRAM bandwidth contention model.
//!
//! Fig. 2 and Fig. 14 hinge on one mechanism: when N JVMs copy
//! simultaneously (mutator work + `memmove` compaction), each sees roughly
//! `1/N` of the machine's DRAM bandwidth, so byte-copy costs inflate while
//! SwapVA's page-table-only traffic barely notices. [`BandwidthModel`] is a
//! small shared token of "how many streams are active right now" that
//! drivers register with while running an instance.

use crate::cycles::Cycles;
use crate::machine::MachineConfig;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Shared contention state: the number of concurrently active
/// memory-intensive streams (JVM instances, GC copiers).
#[derive(Debug, Clone, Default)]
pub struct BandwidthModel {
    active: Arc<AtomicU32>,
}

impl BandwidthModel {
    /// New model with no active streams.
    pub fn new() -> BandwidthModel {
        BandwidthModel::default()
    }

    /// Register a stream; the guard deregisters on drop.
    pub fn register(&self) -> StreamGuard {
        self.active.fetch_add(1, Ordering::Relaxed);
        StreamGuard {
            active: Arc::clone(&self.active),
        }
    }

    /// Currently active streams (at least 1 for costing purposes).
    pub fn streams(&self) -> u32 {
        self.active.load(Ordering::Relaxed).max(1)
    }

    /// Cost of copying `bytes` on `machine` under current contention.
    pub fn copy_cycles(&self, machine: &MachineConfig, bytes: u64) -> Cycles {
        machine.copy_cycles(bytes, self.streams())
    }
}

/// RAII registration of one active stream.
#[derive(Debug)]
pub struct StreamGuard {
    active: Arc<AtomicU32>,
}

impl Drop for StreamGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_counts_streams() {
        let bw = BandwidthModel::new();
        assert_eq!(bw.streams(), 1, "idle model costs as a single stream");
        let g1 = bw.register();
        let g2 = bw.register();
        assert_eq!(bw.streams(), 2);
        drop(g1);
        assert_eq!(bw.streams(), 1);
        drop(g2);
        assert_eq!(bw.streams(), 1);
    }

    #[test]
    fn contention_inflates_copy_cost() {
        let m = MachineConfig::xeon_gold_6130();
        let bw = BandwidthModel::new();
        let solo = bw.copy_cycles(&m, 1 << 24);
        // Enough streams that shares drop well below one stream's cap
        // (total 255.9 GB/s / 12 GB/s-per-stream ≈ 21 streams).
        let _guards: Vec<_> = (0..64).map(|_| bw.register()).collect();
        let contended = bw.copy_cycles(&m, 1 << 24);
        assert!(contended.get() > solo.get() * 2);
    }

    #[test]
    fn clone_shares_state() {
        let bw = BandwidthModel::new();
        let bw2 = bw.clone();
        let _g = bw.register();
        let _g2 = bw.register();
        assert_eq!(bw2.streams(), 2);
    }
}
