//! Set-associative cache simulation for the Table III experiments.
//!
//! `memmove`-based compaction streams every live byte through the cache
//! hierarchy, evicting application working sets; SwapVA only touches page
//! table lines. Table III measures this as cache-miss and DTLB-miss rates.
//! We reproduce it by running the instrumented access streams of both paths
//! through this model.
//!
//! The model is a classic inclusive three-level hierarchy with true-LRU
//! sets. It is intentionally single-observer (one `&mut` user); concurrency
//! is handled a level up by instrumenting one logical core at a time.


/// Whether an access reads or writes (writes allocate like reads here;
/// a write-allocate, write-back policy is assumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// L1 data cache hit.
    L1,
    /// L2 hit.
    L2,
    /// Last-level cache hit.
    Llc,
    /// Missed everywhere — DRAM.
    Memory,
}

/// Geometry of the modeled hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct CacheGeometry {
    /// L1D size in bytes.
    pub l1_bytes: usize,
    /// L1D associativity.
    pub l1_ways: usize,
    /// L2 size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// LLC size in bytes (per-process slice on shared LLCs).
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Line size in bytes (64 on all modeled machines).
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Client Skylake/Kaby Lake (i5-7600): 32K/8 L1D, 256K/4 L2, 6M/12 LLC.
    pub fn client_skylake() -> CacheGeometry {
        CacheGeometry {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 256 << 10,
            l2_ways: 4,
            llc_bytes: 6 << 20,
            llc_ways: 12,
            line_bytes: 64,
        }
    }

    /// Server Skylake-SP (Xeon Gold): 32K/8 L1D, 1M/16 L2, 22M/11 LLC.
    pub fn server_skylake() -> CacheGeometry {
        CacheGeometry {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 1 << 20,
            l2_ways: 16,
            llc_bytes: 22 << 20,
            llc_ways: 11,
            line_bytes: 64,
        }
    }
}

/// One set-associative, true-LRU cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `sets * ways` tags; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache of `size_bytes` with `ways`-way sets of
    /// `line_bytes`-byte lines. `size_bytes` must be a multiple of
    /// `ways * line_bytes` and the set count must be a power of two.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> SetAssocCache {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        let sets = size_bytes / (ways * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be 2^k (got {sets})");
        SetAssocCache {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up the line containing `addr`; on miss, fill with LRU
    /// replacement. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Evict LRU (or first invalid) way.
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                if self.tags[base + w] == u64::MAX {
                    0
                } else {
                    self.stamps[base + w]
                }
            })
            .expect("cache invariant: associativity (ways) is at least 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Invalidate everything (e.g. between benchmark repetitions).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }

    /// (hits, misses) since construction or [`Self::reset_stats`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Zero the hit/miss counters without touching contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of sets (for tests).
    pub fn sets(&self) -> usize {
        self.sets
    }
}

/// Three-level inclusive hierarchy with per-level stats.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    /// Total accesses presented to the hierarchy.
    accesses: u64,
}

impl CacheHierarchy {
    /// Build from a geometry.
    pub fn new(geo: &CacheGeometry) -> CacheHierarchy {
        CacheHierarchy {
            l1: SetAssocCache::new(geo.l1_bytes, geo.l1_ways, geo.line_bytes),
            l2: SetAssocCache::new(geo.l2_bytes, geo.l2_ways, geo.line_bytes),
            llc: SetAssocCache::new(geo.llc_bytes, geo.llc_ways, geo.line_bytes),
            accesses: 0,
        }
    }

    /// Route one access through the hierarchy; returns the servicing level.
    /// Lower levels are filled on the way back (inclusive).
    pub fn access(&mut self, addr: u64, _kind: AccessKind) -> CacheLevel {
        self.accesses += 1;
        if self.l1.access(addr) {
            return CacheLevel::L1;
        }
        if self.l2.access(addr) {
            return CacheLevel::L2;
        }
        if self.llc.access(addr) {
            return CacheLevel::Llc;
        }
        CacheLevel::Memory
    }

    /// `perf`-style cache statistics: "cache references" are accesses that
    /// missed L1 (reached the LLC-bound path), and "cache misses" are those
    /// that missed the LLC — mirroring `cache-references`/`cache-misses`.
    pub fn perf_style_miss_pct(&self) -> f64 {
        let (_, l1_miss) = self.l1.stats();
        let (_, llc_miss) = self.llc.stats();
        if l1_miss == 0 {
            0.0
        } else {
            100.0 * llc_miss as f64 / l1_miss as f64
        }
    }

    /// Total accesses presented.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Per-level `(hits, misses)`: `[l1, l2, llc]`.
    pub fn level_stats(&self) -> [(u64, u64); 3] {
        [self.l1.stats(), self.l2.stats(), self.llc.stats()]
    }

    /// Invalidate all levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.llc.flush();
    }

    /// Zero counters, keep contents.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = SetAssocCache::new(32 << 10, 8, 64);
        assert!(!c.access(0x1000)); // cold miss
        assert!(c.access(0x1000)); // hit
        assert!(c.access(0x1038)); // same line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 sets x 2 ways x 64B lines = 256B cache.
        let mut c = SetAssocCache::new(256, 2, 64);
        assert_eq!(c.sets(), 2);
        // Three distinct lines in set 0 (stride = sets*line = 128B).
        c.access(0); // line A
        c.access(128); // line B
        c.access(256); // line C evicts A
        assert!(!c.access(0), "A must have been evicted");
        assert!(c.access(256), "C must still be resident");
    }

    #[test]
    fn streaming_larger_than_cache_misses() {
        let mut c = SetAssocCache::new(32 << 10, 8, 64);
        // Stream 1 MiB twice: second pass still misses (capacity).
        for pass in 0..2 {
            for addr in (0..(1u64 << 20)).step_by(64) {
                c.access(addr);
            }
            let (h, m) = c.stats();
            assert!(m > h, "pass {pass}: streaming should be miss-dominated");
        }
    }

    #[test]
    fn hierarchy_fills_downward() {
        let mut h = CacheHierarchy::new(&CacheGeometry::client_skylake());
        assert_eq!(h.access(0x4000, AccessKind::Read), CacheLevel::Memory);
        assert_eq!(h.access(0x4000, AccessKind::Read), CacheLevel::L1);
        assert_eq!(h.accesses(), 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let geo = CacheGeometry {
            l1_bytes: 256,
            l1_ways: 2,
            l2_bytes: 4096,
            l2_ways: 4,
            llc_bytes: 1 << 16,
            llc_ways: 4,
            line_bytes: 64,
        };
        let mut h = CacheHierarchy::new(&geo);
        // Fill set 0 of L1 beyond capacity; evicted line still in L2.
        h.access(0, AccessKind::Read);
        h.access(128, AccessKind::Read);
        h.access(256, AccessKind::Read); // evicts line 0 from L1
        assert_eq!(h.access(0, AccessKind::Read), CacheLevel::L2);
    }

    #[test]
    fn perf_style_pct_bounded() {
        let mut h = CacheHierarchy::new(&CacheGeometry::client_skylake());
        for addr in (0..(8u64 << 20)).step_by(64) {
            h.access(addr, AccessKind::Read);
        }
        let pct = h.perf_style_miss_pct();
        assert!((0.0..=100.0).contains(&pct));
        // Pure streaming over 8 MiB > LLC: high miss ratio.
        assert!(pct > 50.0, "streaming miss pct was {pct}");
    }
}
