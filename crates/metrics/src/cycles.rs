//! Cycle counts and simulated-time conversion.
//!
//! Everything the simulation "measures" is a deterministic count of CPU
//! cycles. Converting to wall time only requires the modeled core frequency,
//! so [`Cycles`] is the universal currency of the whole workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// A deterministic count of simulated CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Convert to simulated time at `freq_ghz` GHz.
    #[inline]
    pub fn at_ghz(self, freq_ghz: f64) -> SimTime {
        SimTime::from_nanos(self.0 as f64 / freq_ghz)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two counts (used to combine parallel workers: the phase
    /// ends when the slowest worker ends).
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// Simulated wall-clock time, stored in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime {
    nanos: f64,
}

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime { nanos: 0.0 };

    /// Build from nanoseconds.
    #[inline]
    pub fn from_nanos(nanos: f64) -> SimTime {
        SimTime { nanos }
    }

    /// Build from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> SimTime {
        SimTime { nanos: ms * 1e6 }
    }

    /// Nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.nanos
    }

    /// Microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.nanos / 1e3
    }

    /// Milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.nanos / 1e6
    }

    /// Seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.nanos / 1e9
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self.nanos.max(rhs.nanos),
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.nanos += rhs.nanos;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime {
            nanos: iter.map(|t| t.nanos).sum(),
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1e9 {
            write!(f, "{:.3} s", self.as_secs())
        } else if self.nanos >= 1e6 {
            write!(f, "{:.3} ms", self.as_millis())
        } else if self.nanos >= 1e3 {
            write!(f, "{:.3} us", self.as_micros())
        } else {
            write!(f, "{:.0} ns", self.nanos)
        }
    }
}

/// A thread-safe cycle accumulator.
///
/// Used where several host threads (e.g. rayon tasks generating workload
/// data) charge costs against the same logical core. All updates are
/// `Relaxed`: the counter is a statistic, not a synchronization point, and
/// readers only observe it after the work is joined.
#[derive(Debug, Default)]
pub struct CycleCell {
    cycles: AtomicU64,
}

impl CycleCell {
    /// New zeroed cell.
    pub fn new() -> CycleCell {
        CycleCell::default()
    }

    /// Add `c` cycles.
    #[inline]
    pub fn charge(&self, c: Cycles) {
        self.cycles.fetch_add(c.0, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> Cycles {
        Cycles(self.cycles.load(Ordering::Relaxed))
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> Cycles {
        Cycles(self.cycles.swap(0, Ordering::Relaxed))
    }
}

impl Clone for CycleCell {
    fn clone(&self) -> CycleCell {
        CycleCell {
            cycles: AtomicU64::new(self.cycles.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(100);
        let b = Cycles(50);
        assert_eq!(a + b, Cycles(150));
        assert_eq!(a - b, Cycles(50));
        assert_eq!(a * 3, Cycles(300));
        assert_eq!(a / 4, Cycles(25));
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn time_conversion_at_frequency() {
        // 3.5 GHz: 3500 cycles == 1000 ns.
        let t = Cycles(3500).at_ghz(3.5);
        assert!((t.as_nanos() - 1000.0).abs() < 1e-9);
        assert!((t.as_micros() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(512.0)), "512 ns");
        assert_eq!(format!("{}", SimTime::from_nanos(2_500.0)), "2.500 us");
        assert_eq!(format!("{}", SimTime::from_millis(12.0)), "12.000 ms");
        assert_eq!(format!("{}", SimTime::from_millis(2000.0)), "2.000 s");
    }

    #[test]
    fn cycle_cell_accumulates_and_takes() {
        let cell = CycleCell::new();
        cell.charge(Cycles(10));
        cell.charge(Cycles(32));
        assert_eq!(cell.get(), Cycles(42));
        assert_eq!(cell.take(), Cycles(42));
        assert_eq!(cell.get(), Cycles::ZERO);
    }

    #[test]
    fn cycle_cell_is_thread_safe() {
        let cell = std::sync::Arc::new(CycleCell::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = cell.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.charge(Cycles(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.get(), Cycles(8000));
    }
}
