//! Host-side parallelism helpers (std-only `rayon` replacement).
//!
//! Simulated *virtual-time* parallelism lives in `svagc-core`'s worker
//! pool; this module is only about using the host's cores to run many
//! independent simulations (multi-JVM batches, figure suites) faster in
//! wall-clock time. A small `Mutex`-guarded work queue feeds scoped
//! threads; results are reassembled in input order, so output is
//! deterministic regardless of host scheduling.

use std::sync::Mutex;

/// Map `f` over `items` on up to `available_parallelism` host threads,
/// preserving input order in the output.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(&f).collect();
    }
    let threads = host_threads().min(n);
    // LIFO std-only work queue: each worker pops the next unclaimed item.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = queue.lock().expect("par_map queue lock poisoned").pop();
                let Some((i, it)) = item else { break };
                let r = f(it);
                done.lock().expect("par_map result lock poisoned").push((i, r));
            });
        }
    });
    let mut out = done.into_inner().expect("par_map result lock poisoned");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Worker count for [`par_map`]: `SVAGC_HOST_THREADS` when set (clamped to
/// at least 1), otherwise the host's available parallelism. The override
/// exists so CI and benchmark reports can pin the fan-out width — results
/// are order-deterministic either way, only wall time changes.
pub fn host_threads() -> usize {
    if let Ok(v) = std::env::var("SVAGC_HOST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_maps_all() {
        let input: Vec<u64> = (0..257).collect();
        let out = par_map(input.clone(), |x| x * 2);
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![9], |x| x + 1), vec![10]);
    }
}
