//! Minimal std-only JSON emission.
//!
//! The workspace must build with zero external crates (the CI environment
//! has no registry access), so the `@json` report lines the bench harnesses
//! print are produced by this hand-rolled serializer instead of serde.
//! Structs opt in with the [`impl_to_json!`] macro: field names become
//! object keys in declaration order, matching what `serde_json` used to
//! emit for the same structs.

use std::fmt::Write as _;

/// Serialize `self` as a JSON value appended to `out`.
pub trait ToJson {
    /// Append the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: encode into a fresh `String`.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_to_json {
    ($($t:ty),* $(,)?) => {
        $(impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        })*
    };
}
int_to_json!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        // JSON has no NaN/Infinity; serde_json emits null for those too.
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

/// Implement [`ToJson`] for a struct by listing its fields; they are
/// emitted as a JSON object in the given order.
///
/// ```
/// use svagc_metrics::{impl_to_json, json::ToJson};
/// struct Row { name: &'static str, ms: f64 }
/// impl_to_json!(Row { name, ms });
/// assert_eq!(Row { name: "gc", ms: 1.5 }.to_json(), r#"{"name":"gc","ms":1.5}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    $crate::json::write_json_str(out, stringify!($field));
                    out.push(':');
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

/// A parsed JSON document.
///
/// The perf gate has to *read* the `BENCH_summary.json` it previously wrote,
/// so emission alone is not enough. Numbers keep their source token in
/// `raw`: simulated-cycle counters are `u64`s that can exceed `f64`'s 53-bit
/// mantissa, and the gate compares them exactly via the token, not the
/// lossy float.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, keeping the exact source token alongside the float view.
    Num {
        /// The untouched source token (e.g. `"18446744073709551615"`).
        raw: String,
        /// Lossy float view for tolerance comparisons.
        value: f64,
    },
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match, like serde_json's maps).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact integer view via the raw token (never rounds through `f64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num { raw, .. } => raw.parse().ok(),
            _ => None,
        }
    }

    /// Float view, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        let value: f64 = raw.parse().map_err(|_| self.err("malformed number"))?;
        Ok(JsonValue::Num {
            raw: raw.to_string(),
            value,
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat("\"")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own output; map
                            // them to the replacement char rather than pairing.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat("{")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode_like_json() {
        assert_eq!(7u64.to_json(), "7");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.25f64.to_json(), "1.25");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
        assert_eq!(Some(2u32).to_json(), "2");
        assert_eq!(None::<u32>.to_json(), "null");
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!((1.0f64, 2.5f64).to_json(), "[1,2.5]");
    }

    #[test]
    fn struct_macro_emits_fields_in_order() {
        struct Row {
            name: String,
            collector: &'static str,
            count: usize,
            ok: bool,
        }
        impl_to_json!(Row { name, collector, count, ok });
        let r = Row {
            name: "LRUCache/4".into(),
            collector: "SVAGC",
            count: 3,
            ok: true,
        };
        assert_eq!(
            r.to_json(),
            r#"{"name":"LRUCache/4","collector":"SVAGC","count":3,"ok":true}"#
        );
    }

    #[test]
    fn parser_round_trips_emitted_documents() {
        let doc = r#"{"name":"fig06","rows":[{"cap":1,"ms":0.125},{"cap":8,"ms":1e3}],"big":18446744073709551615,"none":null,"on":true}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("fig06"));
        let rows = v.get("rows").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("cap").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(rows[0].get("ms").and_then(JsonValue::as_f64), Some(0.125));
        assert_eq!(rows[1].get("ms").and_then(JsonValue::as_f64), Some(1000.0));
        // u64::MAX survives exactly via the raw token, though f64 cannot hold it.
        assert_eq!(v.get("big").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        assert_eq!(v.get("on"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn parser_handles_escapes_and_whitespace() {
        let v = parse_json(" { \"k\\n\\\"\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = v.get("k\n\"").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[1].as_str(), Some("A\t"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc", "{\"a\" 1}"] {
            assert!(parse_json(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parser_accepts_own_struct_output() {
        struct Row {
            name: String,
            cycles: u64,
            ratio: f64,
        }
        impl_to_json!(Row { name, cycles, ratio });
        let r = Row {
            name: "x\"y".into(),
            cycles: 1 << 60,
            ratio: 0.333,
        };
        let v = parse_json(&r.to_json()).unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("x\"y"));
        assert_eq!(v.get("cycles").and_then(JsonValue::as_u64), Some(1u64 << 60));
        assert_eq!(v.get("ratio").and_then(JsonValue::as_f64), Some(0.333));
    }
}
