//! Minimal std-only JSON emission.
//!
//! The workspace must build with zero external crates (the CI environment
//! has no registry access), so the `@json` report lines the bench harnesses
//! print are produced by this hand-rolled serializer instead of serde.
//! Structs opt in with the [`impl_to_json!`] macro: field names become
//! object keys in declaration order, matching what `serde_json` used to
//! emit for the same structs.

use std::fmt::Write as _;

/// Serialize `self` as a JSON value appended to `out`.
pub trait ToJson {
    /// Append the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: encode into a fresh `String`.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_to_json {
    ($($t:ty),* $(,)?) => {
        $(impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        })*
    };
}
int_to_json!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        // JSON has no NaN/Infinity; serde_json emits null for those too.
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

/// Implement [`ToJson`] for a struct by listing its fields; they are
/// emitted as a JSON object in the given order.
///
/// ```
/// use svagc_metrics::{impl_to_json, json::ToJson};
/// struct Row { name: &'static str, ms: f64 }
/// impl_to_json!(Row { name, ms });
/// assert_eq!(Row { name: "gc", ms: 1.5 }.to_json(), r#"{"name":"gc","ms":1.5}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    $crate::json::write_json_str(out, stringify!($field));
                    out.push(':');
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode_like_json() {
        assert_eq!(7u64.to_json(), "7");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.25f64.to_json(), "1.25");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
        assert_eq!(Some(2u32).to_json(), "2");
        assert_eq!(None::<u32>.to_json(), "null");
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!((1.0f64, 2.5f64).to_json(), "[1,2.5]");
    }

    #[test]
    fn struct_macro_emits_fields_in_order() {
        struct Row {
            name: String,
            collector: &'static str,
            count: usize,
            ok: bool,
        }
        impl_to_json!(Row { name, collector, count, ok });
        let r = Row {
            name: "LRUCache/4".into(),
            collector: "SVAGC",
            count: 3,
            ok: true,
        };
        assert_eq!(
            r.to_json(),
            r#"{"name":"LRUCache/4","collector":"SVAGC","count":3,"ok":true}"#
        );
    }
}
