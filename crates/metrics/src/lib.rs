//! Machine model, cycle accounting, cache/DTLB simulation, and performance
//! counters for the SVAGC reproduction.
//!
//! The paper evaluates a patched Linux kernel + OpenJDK on real Intel
//! hardware. This crate supplies the *measurement substrate* of the
//! reproduction: every primitive event the paper's results depend on
//! (syscall entries, page-walk memory touches, TLB flushes, IPIs, copied
//! words, cache line transfers) is charged a deterministic cycle cost from a
//! [`machine::MachineConfig`] calibrated to the paper's three testbeds.
//! Simulated wall time is `cycles / frequency`.
//!
//! Layering: this crate knows nothing about page tables, heaps, or GCs — it
//! only knows costs, clocks, caches, and counters. Higher crates
//! (`svagc-vmem`, `svagc-kernel`, …) generate the event streams.

#![warn(missing_docs)]

pub mod bandwidth;
pub mod cache;
pub mod cycles;
pub mod host;
pub mod json;
pub mod machine;
pub mod perf;
pub mod registry;
pub mod rng;
pub mod trace;

pub use bandwidth::BandwidthModel;
pub use cache::{AccessKind, CacheGeometry, CacheHierarchy, CacheLevel, SetAssocCache};
pub use cycles::{CycleCell, Cycles, SimTime};
pub use host::{host_threads, par_map};
pub use json::{parse_json, JsonError, JsonValue, ToJson};
pub use machine::{CostParams, MachineConfig};
pub use perf::PerfCounters;
pub use registry::Registry;
pub use rng::SimRng;
pub use trace::{chrome_trace_json, trace_summary, TraceEvent, TraceKind, Tracer};

