//! Modeled machines and their primitive-event cycle costs.
//!
//! The paper reports results from three Intel testbeds; each gets a preset
//! here. Cost constants are stated assumptions (see DESIGN.md §6): the
//! reproduction targets *shape* agreement, so what matters is that the
//! relative magnitudes (a syscall ≫ a word copy; an IPI ≈ a couple of
//! syscalls; a page walk ≈ a handful of memory touches) are realistic.

use crate::cache::CacheGeometry;
use crate::cycles::Cycles;

/// Cycle costs of the primitive events the simulation charges.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Combined user→kernel→user transition cost of one system call
    /// (post-KPTI x86-64 ballpark).
    pub syscall_entry_exit: u64,
    /// Dispatching one inter-processor interrupt to one target core
    /// (x2apic unicast loop: one wrmsr + bookkeeping per target).
    pub ipi_send: u64,
    /// The receiving core's interrupt handling + local TLB flush.
    pub ipi_receive_flush: u64,
    /// Flushing the local core's whole TLB (the flush itself; refills are
    /// charged lazily via `tlb_refill` on subsequent misses).
    pub tlb_flush_local: u64,
    /// `invlpg`-style single-page local flush.
    pub tlb_flush_page: u64,
    /// Refilling one TLB entry: a 4-level page walk — five dependent
    /// loads (paper §IV: "roughly a five-fold memory access time"), which
    /// mostly hit cached page-table lines on a warm system.
    pub tlb_refill: u64,
    /// One cache-missing memory access (DRAM latency in cycles).
    pub mem_access: u64,
    /// L1D hit latency.
    pub l1_hit: u64,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// LLC hit latency.
    pub llc_hit: u64,
    /// CPU-side cost of copying one 64-byte cache line when the data is
    /// L1/L2-resident (vectorized `memmove` inner loop).
    pub line_copy_cpu: u64,
    /// Per-line copy cost for LLC-resident data.
    pub line_copy_llc: u64,
    /// Exchanging one pair of PTEs once both are located and locked
    /// (two locked loads + two stores).
    pub pte_swap: u64,
    /// Taking + releasing one page-table spinlock (uncontended).
    pub lock_unlock: u64,
    /// Touching one page-table level during a software walk
    /// (one dependent memory load, typically L1/L2 resident).
    pub pt_level_access: u64,
    /// Pinning/unpinning a task to a core (scheduler round trip).
    pub pin_task: u64,
}

impl CostParams {
    /// Baseline cost set shared by the presets; per-machine overrides tweak
    /// latency-sensitive entries.
    const fn baseline() -> CostParams {
        CostParams {
            syscall_entry_exit: 1_800,
            ipi_send: 600,
            ipi_receive_flush: 2_000,
            tlb_flush_local: 800,
            tlb_flush_page: 150,
            tlb_refill: 5 * 20, // five walk loads at cached latency
            mem_access: 70,
            l1_hit: 4,
            l2_hit: 14,
            llc_hit: 42,
            line_copy_cpu: 6,
            line_copy_llc: 14,
            pte_swap: 40,
            lock_unlock: 20,
            pt_level_access: 12,
            pin_task: 3_000,
        }
    }
}

/// A modeled machine: cores, clock, DRAM bandwidth, cache geometry, and
/// primitive costs.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Human-readable name (matches the paper's figure captions).
    pub name: &'static str,
    /// Number of physical cores the process can be scheduled on.
    pub cores: usize,
    /// Core frequency in GHz (converts cycles to simulated time).
    pub freq_ghz: f64,
    /// Aggregate DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// Bandwidth one streaming thread can actually sustain (GB/s) — a
    /// single core cannot drive the full multi-channel aggregate.
    pub stream_bandwidth_gbs: f64,
    /// Cache geometry for the instrumented (Table III) mode.
    pub cache: CacheGeometry,
    /// Primitive event costs.
    pub costs: CostParams,
}

impl MachineConfig {
    /// Intel Core i5-7600 @ 3.50 GHz, 24 GB DDR4-2400 (Figs. 1, 6, 8).
    pub fn i5_7600() -> MachineConfig {
        MachineConfig {
            name: "Core i5-7600 @3.50GHz, DDR4-2400",
            cores: 4,
            freq_ghz: 3.5,
            // Dual-channel DDR4-2400: 2 x 19.2 GB/s.
            dram_bandwidth_gbs: 38.4,
            stream_bandwidth_gbs: 14.0,
            cache: CacheGeometry::client_skylake(),
            costs: CostParams::baseline(),
        }
    }

    /// Dual Intel Xeon Gold 6130 @ 2.10 GHz, 192 GB DDR4-2666
    /// (Figs. 2, 9, 10a, 11-16, Tables II/III).
    pub fn xeon_gold_6130() -> MachineConfig {
        let mut costs = CostParams::baseline();
        // Server uncore: higher DRAM and cross-core latencies.
        costs.mem_access = 90;
        costs.ipi_send = 700;
        costs.ipi_receive_flush = 2_600;
        MachineConfig {
            name: "2x Xeon Gold 6130 @2.10GHz, DDR4-2666",
            cores: 32,
            freq_ghz: 2.1,
            // Six channels per socket x 21.3 GB/s x 2 sockets.
            dram_bandwidth_gbs: 255.9,
            stream_bandwidth_gbs: 12.0,
            cache: CacheGeometry::server_skylake(),
            costs,
        }
    }

    /// Intel Xeon Gold 6240 @ 2.60 GHz, 192 GB DDR4-2933 (Fig. 10b).
    pub fn xeon_gold_6240() -> MachineConfig {
        let mut costs = CostParams::baseline();
        costs.mem_access = 85;
        costs.ipi_send = 700;
        costs.ipi_receive_flush = 2_600;
        MachineConfig {
            name: "Xeon Gold 6240 @2.60GHz, DDR4-2933",
            cores: 18,
            freq_ghz: 2.6,
            // Six channels x 23.5 GB/s.
            dram_bandwidth_gbs: 140.8,
            stream_bandwidth_gbs: 13.5,
            cache: CacheGeometry::server_skylake(),
            costs,
        }
    }

    /// The same machine with a different online-core count (Fig. 9 sweeps
    /// IPI fan-out against core count).
    pub fn with_cores(mut self, cores: usize) -> MachineConfig {
        self.cores = cores;
        self
    }

    /// Bytes of DRAM bandwidth available per core cycle (aggregate).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbs / self.freq_ghz
    }

    /// Cycles to copy `bytes` when `streams` independent copiers share the
    /// machine, with cache-tiered throughput:
    ///
    /// * fits in L2 → CPU-bound vectorized copy (`line_copy_cpu`/line),
    /// * fits in half the LLC → LLC-rate copy (`line_copy_llc`/line),
    /// * larger → DRAM streaming: each byte moves twice (read +
    ///   write-allocate), each copier is capped at one thread's sustainable
    ///   stream bandwidth, and under contention gets at most its share of
    ///   the aggregate — the multi-JVM degradation of Fig. 2.
    ///
    /// This tiering is what produces the paper's ~10-page SwapVA/memmove
    /// break-even (Fig. 10): small copies are cache-resident and cheap, so
    /// the syscall+flush overhead only amortizes above a threshold.
    pub fn copy_cycles(&self, bytes: u64, streams: u32) -> Cycles {
        let lines = bytes.div_ceil(64);
        if bytes <= self.cache.l2_bytes as u64 / 2 {
            return Cycles(lines * self.costs.line_copy_cpu);
        }
        // The LLC is shared: with many active streams each copier owns a
        // sliver of it, so the LLC tier shrinks under contention.
        if bytes <= self.cache.llc_bytes as u64 / (8 * streams.max(1) as u64) {
            return Cycles(lines * self.costs.line_copy_llc);
        }
        let share = self.dram_bandwidth_gbs / streams.max(1) as f64;
        let effective_gbs = self.stream_bandwidth_gbs.min(share);
        let bytes_per_cycle = effective_gbs / self.freq_ghz;
        Cycles((2.0 * bytes as f64 / bytes_per_cycle) as u64)
    }

    /// Simulated time of `c` cycles on this machine.
    pub fn time(&self, c: Cycles) -> crate::cycles::SimTime {
        c.at_ghz(self.freq_ghz)
    }

    /// The SwapVA/memmove break-even in pages, derived from this machine's
    ///
    /// ```
    /// use svagc_metrics::MachineConfig;
    /// let t = MachineConfig::xeon_gold_6130().derived_threshold_pages();
    /// assert!((3..=20).contains(&t)); // near the paper's ~10
    /// ```
    ///
    /// cost constants — Fig. 10's observation that "CPU performance and
    /// memory bandwidth can impact on threshold value and define it",
    /// turned into a formula. A collector can use this instead of the
    /// hard-coded 10.
    ///
    /// Per page, SwapVA pays two (PMD-cached) walk steps, two lock
    /// round-trips, and the PTE exchange; memmove pays the cache-tiered
    /// copy of one page plus two TLB refills. The fixed syscall + local
    /// flush cost divides by the per-page advantage.
    pub fn derived_threshold_pages(&self) -> u64 {
        let c = &self.costs;
        let swap_per_page = 2 * (c.pt_level_access + c.l2_hit) + 2 * c.lock_unlock + c.pte_swap;
        let copy_per_page = self.copy_cycles(4096, 1).get() + 2 * c.tlb_refill;
        let fixed = c.syscall_entry_exit + c.tlb_flush_local;
        if copy_per_page <= swap_per_page {
            return u64::MAX; // swapping never pays on this machine
        }
        (fixed / (copy_per_page - swap_per_page)).max(1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_geometry() {
        assert_eq!(MachineConfig::i5_7600().cores, 4);
        assert_eq!(MachineConfig::xeon_gold_6130().cores, 32);
        assert_eq!(MachineConfig::xeon_gold_6240().cores, 18);
    }

    #[test]
    fn copy_cost_scales_with_bytes() {
        let m = MachineConfig::xeon_gold_6130();
        let small = m.copy_cycles(4096, 1);
        let big = m.copy_cycles(4096 * 100, 1);
        assert!(big.get() > small.get() * 50);
    }

    #[test]
    fn copy_cost_grows_under_contention() {
        let m = MachineConfig::xeon_gold_6130();
        // A lone copier is capped by single-stream bandwidth, so light
        // contention is free; beyond total/stream (~21 streams) the shares
        // shrink and costs grow.
        let solo = m.copy_cycles(1 << 24, 1);
        let light = m.copy_cycles(1 << 24, 8);
        let heavy = m.copy_cycles(1 << 24, 128);
        assert_eq!(light, solo, "8 streams still fit the aggregate");
        assert!(
            heavy.get() > solo.get() * 4,
            "128-way contended {heavy} vs solo {solo}"
        );
    }

    #[test]
    fn big_copy_is_stream_bandwidth_bound() {
        let m = MachineConfig::i5_7600();
        let bytes = 64u64 << 20; // well past the LLC
        let c = m.copy_cycles(bytes, 1);
        let expect = (2.0 * bytes as f64 / (m.stream_bandwidth_gbs / m.freq_ghz)) as u64;
        assert_eq!(c.get(), expect);
        // Sanity: 64 MiB at 14 GB/s effective (x2 traffic) ≈ 9.6 ms.
        let ms = Cycles(c.get()).at_ghz(m.freq_ghz).as_millis();
        assert!((5.0..20.0).contains(&ms), "copy time {ms} ms");
    }

    #[test]
    fn derived_threshold_matches_the_empirical_break_even() {
        // The formula must land in the same band as the Fig. 10 sweep
        // (~7 pages measured; the paper uses 10).
        for m in [
            MachineConfig::i5_7600(),
            MachineConfig::xeon_gold_6130(),
            MachineConfig::xeon_gold_6240(),
        ] {
            let t = m.derived_threshold_pages();
            assert!((3..=20).contains(&t), "{}: derived threshold {t}", m.name);
        }
    }

    #[test]
    fn slower_copies_lower_the_threshold() {
        // A machine whose copies are pricier breaks even sooner.
        let base = MachineConfig::xeon_gold_6130();
        let mut slow_copy = base.clone();
        slow_copy.costs.line_copy_cpu *= 4;
        assert!(slow_copy.derived_threshold_pages() <= base.derived_threshold_pages());
        // And a machine with absurdly slow page-table ops never swaps.
        let mut slow_walk = base.clone();
        slow_walk.costs.pte_swap = 1_000_000;
        assert_eq!(slow_walk.derived_threshold_pages(), u64::MAX);
    }

    #[test]
    fn copy_tiers_are_monotonic_per_byte() {
        let m = MachineConfig::xeon_gold_6130();
        let per_byte = |bytes: u64| m.copy_cycles(bytes, 1).get() as f64 / bytes as f64;
        let l2 = per_byte(128 << 10); // L2-resident
        let llc = per_byte(4 << 20); // LLC-resident
        let dram = per_byte(64 << 20); // streaming
        assert!(l2 < llc && llc < dram, "{l2} {llc} {dram}");
    }

    #[test]
    fn tlb_refill_is_five_walk_loads() {
        // Paper §IV: a refill walks ~5 levels; the loads are mostly
        // cache-resident on a warm system, so the refill sits well below
        // five DRAM accesses but above a handful of L1 hits.
        for m in [
            MachineConfig::i5_7600(),
            MachineConfig::xeon_gold_6130(),
            MachineConfig::xeon_gold_6240(),
        ] {
            assert!(m.costs.tlb_refill >= 5 * m.costs.l1_hit);
            assert!(m.costs.tlb_refill <= 5 * m.costs.mem_access);
        }
    }
}
