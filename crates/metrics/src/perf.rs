//! `perf`-style event counters.
//!
//! Every subsystem increments these as it simulates; harnesses snapshot and
//! diff them around regions of interest (a GC cycle, a benchmark run).
//! Counters are plain `u64`s updated behind `&mut` — shared/concurrent
//! accumulation goes through thread-local counters merged at joins.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A bundle of simulated hardware/OS event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// System calls entered.
    pub syscalls: u64,
    /// PTE pairs exchanged by SwapVA.
    pub pte_swaps: u64,
    /// Bytes copied verbatim (memmove path).
    pub bytes_copied: u64,
    /// Page-table level touches during software walks.
    pub pt_level_accesses: u64,
    /// PMD-cache hits (walks shortened from 4 levels to 1).
    pub pmd_cache_hits: u64,
    /// Full local TLB flushes.
    pub tlb_flushes_local: u64,
    /// Single-page local TLB invalidations.
    pub tlb_flushes_page: u64,
    /// Inter-processor interrupts sent.
    pub ipis_sent: u64,
    /// TLB lookups.
    pub tlb_lookups: u64,
    /// TLB misses (each costs a refill walk).
    pub tlb_misses: u64,
    /// Data accesses presented to the cache hierarchy.
    pub cache_accesses: u64,
    /// Accesses that missed L1 (perf "cache-references").
    pub cache_references: u64,
    /// Accesses that missed the LLC (perf "cache-misses").
    pub cache_misses: u64,
    /// Objects moved by GC (any path).
    pub objects_moved: u64,
    /// Objects moved via SwapVA.
    pub objects_swapped: u64,
    /// GC cycles completed.
    pub gc_cycles: u64,
    /// SwapVA faults injected by the kernel fault plan.
    pub swap_faults_injected: u64,
    /// Pages rewritten by transaction rollbacks (aborted GC cycles).
    pub rollback_pages: u64,
    /// Far-tier pages fetched on access (demand promotions).
    pub tier_fetches: u64,
}

impl PerfCounters {
    /// All-zero counters.
    pub fn new() -> PerfCounters {
        PerfCounters::default()
    }

    /// perf-style cache-miss percentage (`cache-misses / cache-references`).
    pub fn cache_miss_pct(&self) -> f64 {
        if self.cache_references == 0 {
            0.0
        } else {
            100.0 * self.cache_misses as f64 / self.cache_references as f64
        }
    }

    /// DTLB miss percentage (`tlb_misses / tlb_lookups`).
    pub fn dtlb_miss_pct(&self) -> f64 {
        if self.tlb_lookups == 0 {
            0.0
        } else {
            100.0 * self.tlb_misses as f64 / self.tlb_lookups as f64
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &PerfCounters) {
        *self += *other;
    }

    /// Fold every counter into `reg` under `perf.<field>` keys.
    pub fn register_into(&self, reg: &mut crate::registry::Registry) {
        let fields: [(&str, u64); 18] = [
            ("syscalls", self.syscalls),
            ("pte_swaps", self.pte_swaps),
            ("bytes_copied", self.bytes_copied),
            ("pt_level_accesses", self.pt_level_accesses),
            ("pmd_cache_hits", self.pmd_cache_hits),
            ("tlb_flushes_local", self.tlb_flushes_local),
            ("tlb_flushes_page", self.tlb_flushes_page),
            ("ipis_sent", self.ipis_sent),
            ("tlb_lookups", self.tlb_lookups),
            ("tlb_misses", self.tlb_misses),
            ("cache_accesses", self.cache_accesses),
            ("cache_references", self.cache_references),
            ("cache_misses", self.cache_misses),
            ("objects_moved", self.objects_moved),
            ("objects_swapped", self.objects_swapped),
            ("gc_cycles", self.gc_cycles),
            ("swap_faults_injected", self.swap_faults_injected),
            ("rollback_pages", self.rollback_pages),
        ];
        for (name, v) in fields {
            reg.add(&format!("perf.{name}"), v);
        }
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;
    fn add(self, o: PerfCounters) -> PerfCounters {
        PerfCounters {
            syscalls: self.syscalls + o.syscalls,
            pte_swaps: self.pte_swaps + o.pte_swaps,
            bytes_copied: self.bytes_copied + o.bytes_copied,
            pt_level_accesses: self.pt_level_accesses + o.pt_level_accesses,
            pmd_cache_hits: self.pmd_cache_hits + o.pmd_cache_hits,
            tlb_flushes_local: self.tlb_flushes_local + o.tlb_flushes_local,
            tlb_flushes_page: self.tlb_flushes_page + o.tlb_flushes_page,
            ipis_sent: self.ipis_sent + o.ipis_sent,
            tlb_lookups: self.tlb_lookups + o.tlb_lookups,
            tlb_misses: self.tlb_misses + o.tlb_misses,
            cache_accesses: self.cache_accesses + o.cache_accesses,
            cache_references: self.cache_references + o.cache_references,
            cache_misses: self.cache_misses + o.cache_misses,
            objects_moved: self.objects_moved + o.objects_moved,
            objects_swapped: self.objects_swapped + o.objects_swapped,
            gc_cycles: self.gc_cycles + o.gc_cycles,
            swap_faults_injected: self.swap_faults_injected + o.swap_faults_injected,
            rollback_pages: self.rollback_pages + o.rollback_pages,
            tier_fetches: self.tier_fetches + o.tier_fetches,
        }
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, o: PerfCounters) {
        *self = *self + o;
    }
}

impl Sub for PerfCounters {
    type Output = PerfCounters;
    fn sub(self, o: PerfCounters) -> PerfCounters {
        PerfCounters {
            syscalls: self.syscalls - o.syscalls,
            pte_swaps: self.pte_swaps - o.pte_swaps,
            bytes_copied: self.bytes_copied - o.bytes_copied,
            pt_level_accesses: self.pt_level_accesses - o.pt_level_accesses,
            pmd_cache_hits: self.pmd_cache_hits - o.pmd_cache_hits,
            tlb_flushes_local: self.tlb_flushes_local - o.tlb_flushes_local,
            tlb_flushes_page: self.tlb_flushes_page - o.tlb_flushes_page,
            ipis_sent: self.ipis_sent - o.ipis_sent,
            tlb_lookups: self.tlb_lookups - o.tlb_lookups,
            tlb_misses: self.tlb_misses - o.tlb_misses,
            cache_accesses: self.cache_accesses - o.cache_accesses,
            cache_references: self.cache_references - o.cache_references,
            cache_misses: self.cache_misses - o.cache_misses,
            objects_moved: self.objects_moved - o.objects_moved,
            objects_swapped: self.objects_swapped - o.objects_swapped,
            gc_cycles: self.gc_cycles - o.gc_cycles,
            swap_faults_injected: self.swap_faults_injected - o.swap_faults_injected,
            rollback_pages: self.rollback_pages - o.rollback_pages,
            tier_fetches: self.tier_fetches - o.tier_fetches,
        }
    }
}

impl fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "syscalls            {:>12}", self.syscalls)?;
        writeln!(f, "pte swaps           {:>12}", self.pte_swaps)?;
        writeln!(f, "bytes copied        {:>12}", self.bytes_copied)?;
        writeln!(f, "pt level accesses   {:>12}", self.pt_level_accesses)?;
        writeln!(f, "pmd cache hits      {:>12}", self.pmd_cache_hits)?;
        writeln!(f, "tlb flushes (local) {:>12}", self.tlb_flushes_local)?;
        writeln!(f, "tlb flushes (page)  {:>12}", self.tlb_flushes_page)?;
        writeln!(f, "IPIs sent           {:>12}", self.ipis_sent)?;
        writeln!(
            f,
            "dtlb miss           {:>11.2}% ({} / {})",
            self.dtlb_miss_pct(),
            self.tlb_misses,
            self.tlb_lookups
        )?;
        writeln!(
            f,
            "cache miss          {:>11.2}% ({} / {})",
            self.cache_miss_pct(),
            self.cache_misses,
            self.cache_references
        )?;
        writeln!(
            f,
            "objects moved       {:>12} ({} swapped)",
            self.objects_moved, self.objects_swapped
        )?;
        write!(f, "gc cycles           {:>12}", self.gc_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_roundtrip() {
        let mut a = PerfCounters::new();
        a.syscalls = 10;
        a.pte_swaps = 100;
        a.tlb_lookups = 1000;
        a.tlb_misses = 50;
        let mut b = PerfCounters::new();
        b.syscalls = 3;
        b.tlb_lookups = 200;
        b.tlb_misses = 10;
        let sum = a + b;
        assert_eq!(sum.syscalls, 13);
        assert_eq!(sum - b, a);
    }

    #[test]
    fn miss_percentages() {
        let mut c = PerfCounters::new();
        assert_eq!(c.dtlb_miss_pct(), 0.0);
        assert_eq!(c.cache_miss_pct(), 0.0);
        c.tlb_lookups = 200;
        c.tlb_misses = 50;
        c.cache_references = 1000;
        c.cache_misses = 900;
        assert!((c.dtlb_miss_pct() - 25.0).abs() < 1e-12);
        assert!((c.cache_miss_pct() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut total = PerfCounters::new();
        for _ in 0..4 {
            let mut part = PerfCounters::new();
            part.ipis_sent = 7;
            total.merge(&part);
        }
        assert_eq!(total.ipis_sent, 28);
    }

    #[test]
    fn display_is_stable() {
        let c = PerfCounters::new();
        let s = format!("{c}");
        assert!(s.contains("IPIs sent"));
        assert!(s.contains("gc cycles"));
    }
}
