//! A unified counter registry.
//!
//! The workspace historically accumulated counters in three disjoint
//! places — `kernel.perf` ([`crate::PerfCounters`]), the GC's per-cycle
//! stats, and the resilience counters — each with its own report path, so
//! the numbers could silently disagree. The [`Registry`] is the single
//! namespace they all fold into: `perf.*` from the kernel counters, `gc.*`
//! from the collector log, and `trace.*` derived from the event sink by
//! [`crate::trace::register_events`]. Cross-source invariants (for example
//! `trace.swapva.pte_swaps == perf.pte_swaps`) become one-line assertions
//! over registry keys, which is how the trace layer keeps the stats honest.
//!
//! Keys are sorted (BTreeMap), so rendering and JSON export are
//! deterministic.

use crate::json::write_json_str;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A flat, sorted `name -> u64` counter store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    entries: BTreeMap<String, u64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `v` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, v: u64) {
        if let Some(slot) = self.entries.get_mut(name) {
            *slot += v;
        } else {
            self.entries.insert(name.to_string(), v);
        }
    }

    /// The value of `name` (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.entries.get(name).copied().unwrap_or(0)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no counter has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Counters under `prefix` (e.g. `"trace."`), in key order.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Deterministic JSON object of all counters.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(16 + self.entries.len() * 24);
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push('}');
        out
    }

    /// Aligned text table of all counters.
    pub fn render(&self) -> String {
        let width = self.entries.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.entries {
            let _ = writeln!(out, "{k:<width$} {v:>14}");
        }
        out
    }
}

/// Hook the registry into the generic JSON emitters (e.g. the BENCH report
/// writer nests a registry under its `"counters"` key).
impl crate::json::ToJson for Registry {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_accumulate() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.add("perf.syscalls", 3);
        r.add("perf.syscalls", 4);
        r.add("gc.cycles", 1);
        assert_eq!(r.get("perf.syscalls"), 7);
        assert_eq!(r.get("missing"), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_and_json_are_sorted() {
        let mut r = Registry::new();
        r.add("z.last", 1);
        r.add("a.first", 2);
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a.first", "z.last"]);
        assert_eq!(r.to_json(), r#"{"a.first":2,"z.last":1}"#);
    }

    #[test]
    fn prefix_filter() {
        let mut r = Registry::new();
        r.add("trace.swapva.count", 5);
        r.add("perf.syscalls", 5);
        let traced: Vec<&str> = r.with_prefix("trace.").map(|(k, _)| k).collect();
        assert_eq!(traced, ["trace.swapva.count"]);
    }

    #[test]
    fn render_aligns() {
        let mut r = Registry::new();
        r.add("a", 1);
        r.add("long.key", 2);
        let s = r.render();
        assert!(s.contains("a        "));
        assert!(s.lines().count() == 2);
    }
}
