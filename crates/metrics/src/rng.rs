//! Small deterministic PRNG (std-only `rand` replacement).
//!
//! The workloads and the kernel fault injector need seeded, reproducible
//! pseudo-randomness; the external `rand` crate is unavailable offline, so
//! this module provides a splitmix64 generator with the narrow API surface
//! the workspace actually uses (`gen_bool`, `gen_range` over the handful of
//! range types that appear in workloads). Determinism across runs and
//! platforms is a hard requirement — simulation results must not depend on
//! the host.

use std::ops::{Range, RangeInclusive};

/// Seeded splitmix64 generator.
///
/// Not cryptographic; statistically solid for simulation workloads and
/// passes through a full 2^64 period.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Build a generator from a seed (same call shape as
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a range (see [`SampleRange`] for supported types).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Range types [`SimRng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

// Modulo reduction has negligible bias for the span sizes the simulation
// uses (all far below 2^64) and keeps sampling branch-free/deterministic.
impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SimRng) -> u64 {
        assert!(self.start < self.end, "gen_range: empty u64 range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SimRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive u64 range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.next_u64() % (span + 1)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SimRng) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SimRng) -> usize {
        (*self.start() as u64..=*self.end() as u64).sample(rng) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SimRng) -> u32 {
        (self.start as u64..self.end as u64).sample(rng) as u32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SimRng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SimRng) -> f64 {
        self.start() + rng.gen_f64() * (self.end() - self.start())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(5u64..=5);
            assert_eq!(v, 5);
            let v = r.gen_range(0usize..3);
            assert!(v < 3);
            let f = r.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }
}
