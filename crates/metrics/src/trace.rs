//! Deterministic virtual-time event tracing.
//!
//! The simulation's figures are *where-did-the-cycles-go* arguments —
//! syscall entry vs. PTE walk vs. TLB shootdown — so aggregate end-of-run
//! counters are not enough to debug the cost model. This module records a
//! per-event timeline in **virtual time**: every event is stamped with a
//! [`Cycles`] timestamp taken from the simulated clocks (worker loads,
//! phase makespans), never from the host clock. Same inputs ⇒ bit-identical
//! trace, which is what makes the golden-file CI job possible.
//!
//! # Event model
//!
//! * **Spans** (`dur = Some(_)`) cover an interval: GC phases, individual
//!   SwapVA calls, memmove copies.
//! * **Instants** (`dur = None`) mark a point: batch flushes, retries,
//!   fallbacks, batch splits, TLB shootdowns, injected faults.
//!
//! Each event carries the worker/core id that caused it (`tid`) and a small
//! set of `(name, value)` argument pairs (pages swapped, IPIs sent, victim
//! core mask, …).
//!
//! # Zero cost when disabled
//!
//! Disabling is two-layered:
//!
//! * **Runtime**: a default [`Tracer`] holds no state; every emit method is
//!   an `#[inline]` no-op guarded by one `Option` check.
//! * **Compile time**: building with `--no-default-features` (the `trace`
//!   cargo feature off) removes the state field entirely, so the sink
//!   compiles to empty functions and the instrumented hot paths are
//!   byte-for-byte the uninstrumented ones.
//!
//! Emit sites therefore never need `#[cfg]` guards or `if enabled` checks —
//! they call the sink unconditionally.
//!
//! # Exporters
//!
//! [`chrome_trace_json`] writes the Chrome `trace_event` JSON format
//! (load in `chrome://tracing` or Perfetto; timestamps are raw cycles in
//! the "microsecond" field, so on-screen "us" reads as cycles).
//! [`trace_summary`] renders a per-phase text profile: top-N costliest
//! SwapVA calls and shootdown interference per victim core.

use crate::cycles::Cycles;
use crate::json::write_json_str;
use std::fmt::Write as _;

/// What happened. Kinds are closed-world so exporters and the counter
/// registry can enumerate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// One full (major) GC cycle, mark through compact. Span.
    GcCycle,
    /// One minor (scavenge) cycle. Span.
    MinorCycle,
    /// LISP2 phase I: mark. Span.
    MarkPhase,
    /// SATB marking interleaved with the mutator (`--concurrent` mode):
    /// the off-pause portion of the trace, between the initial-mark and
    /// final-mark pauses. Span.
    ConcurrentMarkPhase,
    /// LISP2 phase II: compute forwarding addresses. Span.
    ForwardPhase,
    /// LISP2 phase III: adjust references. Span.
    AdjustPhase,
    /// LISP2 phase IV: compact (move objects). Span.
    CompactPhase,
    /// One SwapVA syscall (single request or aggregated batch). Span.
    SwapVa,
    /// One byte-copy move through the kernel. Span.
    Memmove,
    /// An aggregation batch handed to the resilient executor. Instant.
    BatchFlush,
    /// A TLB shootdown (IPI fan-out to victim cores). Instant.
    Shootdown,
    /// A transient SwapVA fault retried with backoff. Instant.
    SwapRetry,
    /// A SwapVA request abandoned to the memmove fallback. Instant.
    SwapFallback,
    /// A faulted batch split and resumed past the failing request. Instant.
    BatchSplit,
    /// A fault injected by the kernel fault plan. Instant.
    FaultInjected,
    /// A GC cycle aborted (unrecoverable fault or blown deadline). Instant.
    CycleAbort,
    /// An undo-journal rollback replayed after an abort. Instant.
    Rollback,
    /// A degraded-mode transition (escalation or probation recovery).
    /// Instant.
    ModeChange,
    /// The stale-translation oracle caught a violation: a TLB hit whose
    /// cached frame disagrees with the live page table, or a flush that
    /// broke the shootdown-protocol preconditions. Instant.
    TlbOracle,
    /// A seeded crash point fired: the simulated machine died here and
    /// only durable state survives. Instant.
    CrashFired,
    /// A write-ahead-log protocol record (cycle begin/commit/abort/
    /// recovered) became durable. Instant.
    WalRecord,
    /// One recovery action (epoch classified, undo replayed, heap
    /// re-derived) during post-crash restart. Instant.
    Recovery,
    /// One GC work packet executed by the packet scheduler
    /// (`--scheduler packets`): args carry the packet kind, the executing
    /// worker, and whether it was stolen. Span.
    Packet,
}

impl TraceKind {
    /// Every kind, in a fixed order (for summaries and registries).
    pub const ALL: [TraceKind; 23] = [
        TraceKind::GcCycle,
        TraceKind::MinorCycle,
        TraceKind::MarkPhase,
        TraceKind::ConcurrentMarkPhase,
        TraceKind::ForwardPhase,
        TraceKind::AdjustPhase,
        TraceKind::CompactPhase,
        TraceKind::SwapVa,
        TraceKind::Memmove,
        TraceKind::BatchFlush,
        TraceKind::Shootdown,
        TraceKind::SwapRetry,
        TraceKind::SwapFallback,
        TraceKind::BatchSplit,
        TraceKind::FaultInjected,
        TraceKind::CycleAbort,
        TraceKind::Rollback,
        TraceKind::ModeChange,
        TraceKind::TlbOracle,
        TraceKind::CrashFired,
        TraceKind::WalRecord,
        TraceKind::Recovery,
        TraceKind::Packet,
    ];

    /// Stable event name (Chrome trace `name`, registry key segment).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::GcCycle => "gc_cycle",
            TraceKind::MinorCycle => "minor_cycle",
            TraceKind::MarkPhase => "mark",
            TraceKind::ConcurrentMarkPhase => "concurrent_mark",
            TraceKind::ForwardPhase => "forward",
            TraceKind::AdjustPhase => "adjust",
            TraceKind::CompactPhase => "compact",
            TraceKind::SwapVa => "swapva",
            TraceKind::Memmove => "memmove",
            TraceKind::BatchFlush => "batch_flush",
            TraceKind::Shootdown => "shootdown",
            TraceKind::SwapRetry => "swap_retry",
            TraceKind::SwapFallback => "swap_fallback",
            TraceKind::BatchSplit => "batch_split",
            TraceKind::FaultInjected => "fault_injected",
            TraceKind::CycleAbort => "cycle_abort",
            TraceKind::Rollback => "rollback",
            TraceKind::ModeChange => "mode_change",
            TraceKind::TlbOracle => "tlb_oracle",
            TraceKind::CrashFired => "crash_fired",
            TraceKind::WalRecord => "wal_record",
            TraceKind::Recovery => "recovery",
            TraceKind::Packet => "packet",
        }
    }

    /// Chrome trace category.
    pub fn category(self) -> &'static str {
        match self {
            TraceKind::GcCycle
            | TraceKind::MinorCycle
            | TraceKind::MarkPhase
            | TraceKind::ConcurrentMarkPhase
            | TraceKind::ForwardPhase
            | TraceKind::AdjustPhase
            | TraceKind::CompactPhase
            | TraceKind::Packet => "gc",
            TraceKind::SwapVa | TraceKind::Memmove | TraceKind::Shootdown => "kernel",
            TraceKind::BatchFlush
            | TraceKind::SwapRetry
            | TraceKind::SwapFallback
            | TraceKind::BatchSplit
            | TraceKind::FaultInjected
            | TraceKind::CycleAbort
            | TraceKind::Rollback
            | TraceKind::ModeChange
            | TraceKind::TlbOracle
            | TraceKind::CrashFired
            | TraceKind::WalRecord
            | TraceKind::Recovery => "resilience",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceKind,
    /// Virtual-time start of the event.
    pub ts: Cycles,
    /// `Some(duration)` for spans, `None` for instants.
    pub dur: Option<Cycles>,
    /// Worker/core id the event is attributed to.
    pub tid: u32,
    /// Small argument list; names are static so the trace stays allocation-
    /// light and the exporter deterministic.
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// The value of argument `name`, if present.
    pub fn arg(&self, name: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
    }
}

/// Per-run mutable sink state (only exists in `trace` builds).
#[cfg(feature = "trace")]
#[derive(Debug, Default)]
struct TraceState {
    events: Vec<TraceEvent>,
    /// Virtual-time origin added to every relative timestamp. Callers that
    /// know "where on the timeline" a sub-computation runs (a worker's
    /// current load within a phase) position the base before handing
    /// control to lower layers.
    base: Cycles,
}

/// The event sink. Cheap to embed (one pointer-sized option), disabled by
/// default, and compiled to a zero-sized no-op without the `trace` feature.
#[derive(Debug, Default)]
pub struct Tracer {
    #[cfg(feature = "trace")]
    state: Option<Box<TraceState>>,
}

impl Tracer {
    /// A disabled sink (every emit is a no-op).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// An enabled, empty sink. Without the `trace` feature this still
    /// returns a no-op sink — enabling is a runtime request, recording
    /// requires the compile-time feature too.
    pub fn enabled() -> Tracer {
        #[cfg(feature = "trace")]
        {
            Tracer {
                state: Some(Box::default()),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            Tracer {}
        }
    }

    /// Is the sink recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.state.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Set the virtual-time origin for subsequent relative emissions.
    #[inline]
    pub fn set_base(&mut self, base: Cycles) {
        #[cfg(feature = "trace")]
        if let Some(s) = &mut self.state {
            s.base = base;
        }
        #[cfg(not(feature = "trace"))]
        let _ = base;
    }

    /// The current virtual-time origin ([`Cycles::ZERO`] when disabled).
    #[inline]
    pub fn base(&self) -> Cycles {
        #[cfg(feature = "trace")]
        if let Some(s) = &self.state {
            return s.base;
        }
        Cycles::ZERO
    }

    /// Advance the virtual-time origin by `d` (cycles just consumed).
    #[inline]
    pub fn advance(&mut self, d: Cycles) {
        #[cfg(feature = "trace")]
        if let Some(s) = &mut self.state {
            s.base += d;
        }
        #[cfg(not(feature = "trace"))]
        let _ = d;
    }

    /// Record a point event at `base + dt`, attributed to `tid`.
    #[inline]
    pub fn instant(&mut self, kind: TraceKind, dt: Cycles, tid: u32, args: &[(&'static str, u64)]) {
        #[cfg(feature = "trace")]
        if let Some(s) = &mut self.state {
            let ts = s.base + dt;
            s.events.push(TraceEvent {
                kind,
                ts,
                dur: None,
                tid,
                args: args.to_vec(),
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (kind, dt, tid, args);
        }
    }

    /// Record a span starting at `base + start_dt` lasting `dur`.
    #[inline]
    pub fn span(
        &mut self,
        kind: TraceKind,
        start_dt: Cycles,
        dur: Cycles,
        tid: u32,
        args: &[(&'static str, u64)],
    ) {
        #[cfg(feature = "trace")]
        if let Some(s) = &mut self.state {
            let ts = s.base + start_dt;
            s.events.push(TraceEvent {
                kind,
                ts,
                dur: Some(dur),
                tid,
                args: args.to_vec(),
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (kind, start_dt, dur, tid, args);
        }
    }

    /// Record a span at an absolute virtual timestamp (ignores the base).
    #[inline]
    pub fn span_abs(
        &mut self,
        kind: TraceKind,
        ts: Cycles,
        dur: Cycles,
        tid: u32,
        args: &[(&'static str, u64)],
    ) {
        #[cfg(feature = "trace")]
        if let Some(s) = &mut self.state {
            s.events.push(TraceEvent {
                kind,
                ts,
                dur: Some(dur),
                tid,
                args: args.to_vec(),
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (kind, ts, dur, tid, args);
        }
    }

    /// The events recorded so far (empty when disabled).
    pub fn events(&self) -> &[TraceEvent] {
        #[cfg(feature = "trace")]
        {
            self.state.as_ref().map_or(&[], |s| &s.events)
        }
        #[cfg(not(feature = "trace"))]
        {
            &[]
        }
    }

    /// Drain the recorded events, leaving the sink enabled-state unchanged.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        #[cfg(feature = "trace")]
        {
            self.state
                .as_mut()
                .map_or_else(Vec::new, |s| std::mem::take(&mut s.events))
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }
}

/// Render events in Chrome `trace_event` JSON ("JSON object format").
///
/// Timestamps and durations are raw virtual **cycles** placed in the
/// microsecond-denominated `ts`/`dur` fields — integers, so the output is
/// byte-identical across runs and platforms. `otherData.clock` records the
/// convention.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual-cycles\"},\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_json_str(&mut out, e.kind.name());
        out.push_str(",\"cat\":");
        write_json_str(&mut out, e.kind.category());
        match e.dur {
            Some(d) => {
                let _ = write!(out, ",\"ph\":\"X\",\"ts\":{},\"dur\":{}", e.ts.get(), d.get());
            }
            None => {
                let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}", e.ts.get());
            }
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", e.tid);
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, k);
                let _ = write!(out, ":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Fold `events` into `reg` under `trace.`-prefixed keys:
/// `trace.<kind>.count`, `trace.<kind>.cycles` (span durations), and
/// `trace.<kind>.<arg>` for every argument.
pub fn register_events(events: &[TraceEvent], reg: &mut crate::registry::Registry) {
    let mut key = String::new();
    for e in events {
        let name = e.kind.name();
        key.clear();
        let _ = write!(key, "trace.{name}.count");
        reg.add(&key, 1);
        if let Some(d) = e.dur {
            key.clear();
            let _ = write!(key, "trace.{name}.cycles");
            reg.add(&key, d.get());
        }
        for (k, v) in &e.args {
            key.clear();
            let _ = write!(key, "trace.{name}.{k}");
            reg.add(&key, *v);
        }
    }
}

/// A human-readable per-phase profile of a trace.
///
/// Sections: event counts per kind, GC phase totals, the `top_n` costliest
/// SwapVA calls, and TLB-shootdown interference attributed to each victim
/// core (from the `victims` bitmask + `interference` arguments the kernel
/// attaches to shootdown events).
pub fn trace_summary(events: &[TraceEvent], top_n: usize, cores: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== trace summary: {} events ==", events.len());

    // Per-kind counts and total span cycles.
    let _ = writeln!(out, "-- events --");
    for kind in TraceKind::ALL {
        let mut n = 0u64;
        let mut cyc = 0u64;
        for e in events.iter().filter(|e| e.kind == kind) {
            n += 1;
            cyc += e.dur.map_or(0, Cycles::get);
        }
        if n > 0 {
            let _ = writeln!(out, "{:<16} {:>8} events {:>14} cyc", kind.name(), n, cyc);
        }
    }

    // GC phase totals (span sums across cycles).
    let phases = [
        TraceKind::MarkPhase,
        TraceKind::ConcurrentMarkPhase,
        TraceKind::ForwardPhase,
        TraceKind::AdjustPhase,
        TraceKind::CompactPhase,
    ];
    if events.iter().any(|e| phases.contains(&e.kind)) {
        let _ = writeln!(out, "-- gc phases --");
        let total: u64 = events
            .iter()
            .filter(|e| phases.contains(&e.kind))
            .map(|e| e.dur.map_or(0, Cycles::get))
            .sum();
        for kind in phases {
            let cyc: u64 = events
                .iter()
                .filter(|e| e.kind == kind)
                .map(|e| e.dur.map_or(0, Cycles::get))
                .sum();
            let pct = if total == 0 { 0.0 } else { 100.0 * cyc as f64 / total as f64 };
            let _ = writeln!(out, "{:<16} {:>14} cyc {:>6.1}%", kind.name(), cyc, pct);
        }
    }

    // Top-N costliest SwapVA calls.
    let mut swaps: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == TraceKind::SwapVa).collect();
    if !swaps.is_empty() {
        swaps.sort_by_key(|e| (std::cmp::Reverse(e.dur.unwrap_or(Cycles::ZERO)), e.ts));
        let _ = writeln!(out, "-- top {} swapva calls --", top_n.min(swaps.len()));
        for e in swaps.iter().take(top_n) {
            let _ = writeln!(
                out,
                "ts {:>12}  core {:>3}  {:>10} cyc  pages {:>5}  requests {:>4}",
                e.ts.get(),
                e.tid,
                e.dur.unwrap_or(Cycles::ZERO).get(),
                e.arg("pages").unwrap_or(0),
                e.arg("requests").unwrap_or(1),
            );
        }
    }

    // Shootdown interference per victim core.
    let shootdowns: Vec<&TraceEvent> =
        events.iter().filter(|e| e.kind == TraceKind::Shootdown).collect();
    if !shootdowns.is_empty() {
        let mut per_core = vec![0u64; cores.max(1)];
        let mut total_ipis = 0u64;
        for e in &shootdowns {
            total_ipis += e.arg("ipis").unwrap_or(0);
            let intf = e.arg("interference").unwrap_or(0);
            let mask = e.arg("victims").unwrap_or(0);
            let victims = mask.count_ones() as u64;
            if victims == 0 {
                continue;
            }
            let share = intf / victims;
            for (c, slot) in per_core.iter_mut().enumerate() {
                if c < 64 && (mask >> c) & 1 == 1 {
                    *slot += share;
                }
            }
        }
        let _ = writeln!(
            out,
            "-- shootdowns: {} broadcasts, {} IPIs --",
            shootdowns.len(),
            total_ipis
        );
        for (c, cyc) in per_core.iter().enumerate() {
            if *cyc > 0 {
                let _ = writeln!(out, "victim core {c:<3} {cyc:>14} cyc stolen");
            }
        }
    }
    out
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_events() -> Vec<TraceEvent> {
        let mut t = Tracer::enabled();
        t.span(TraceKind::MarkPhase, Cycles::ZERO, Cycles(100), 0, &[("objects", 7)]);
        t.set_base(Cycles(100));
        t.span(TraceKind::SwapVa, Cycles(5), Cycles(40), 2, &[("requests", 1), ("pages", 3)]);
        t.instant(
            TraceKind::Shootdown,
            Cycles(50),
            1,
            &[("ipis", 3), ("interference", 90), ("victims", 0b1101)],
        );
        t.take()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.span(TraceKind::GcCycle, Cycles::ZERO, Cycles(10), 0, &[]);
        t.instant(TraceKind::BatchFlush, Cycles::ZERO, 0, &[]);
        assert!(t.events().is_empty());
        assert!(t.take().is_empty());
    }

    #[test]
    fn base_positions_relative_events() {
        let evs = sample_events();
        assert_eq!(evs[0].ts, Cycles(0));
        assert_eq!(evs[1].ts, Cycles(105));
        assert_eq!(evs[1].dur, Some(Cycles(40)));
        assert_eq!(evs[2].ts, Cycles(150));
        assert_eq!(evs[2].dur, None);
    }

    #[test]
    fn chrome_export_is_exact() {
        let evs = sample_events();
        let json = chrome_trace_json(&evs);
        let expected = concat!(
            "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual-cycles\"},\"traceEvents\":[",
            "{\"name\":\"mark\",\"cat\":\"gc\",\"ph\":\"X\",\"ts\":0,\"dur\":100,\"pid\":1,\"tid\":0,\"args\":{\"objects\":7}},",
            "{\"name\":\"swapva\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":105,\"dur\":40,\"pid\":1,\"tid\":2,\"args\":{\"requests\":1,\"pages\":3}},",
            "{\"name\":\"shootdown\",\"cat\":\"kernel\",\"ph\":\"i\",\"s\":\"t\",\"ts\":150,\"pid\":1,\"tid\":1,\"args\":{\"ipis\":3,\"interference\":90,\"victims\":13}}",
            "]}\n",
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn registry_totals_match_events() {
        let evs = sample_events();
        let mut reg = Registry::new();
        register_events(&evs, &mut reg);
        assert_eq!(reg.get("trace.mark.count"), 1);
        assert_eq!(reg.get("trace.mark.cycles"), 100);
        assert_eq!(reg.get("trace.swapva.pages"), 3);
        assert_eq!(reg.get("trace.shootdown.ipis"), 3);
        assert_eq!(reg.get("trace.shootdown.count"), 1);
    }

    #[test]
    fn summary_attributes_interference_to_victims() {
        let evs = sample_events();
        let s = trace_summary(&evs, 5, 4);
        assert!(s.contains("top 1 swapva calls"));
        // 90 cycles over victims {0, 2, 3} = 30 each.
        assert!(s.contains("victim core 0"), "{s}");
        assert!(s.contains("30 cyc stolen"), "{s}");
        assert!(!s.contains("victim core 1 "), "{s}");
    }
}
