//! Property tests of the measurement substrate: cache replacement laws
//! and perf-counter algebra.


#![cfg(feature = "proptest-tests")]
// Gated off by default: `proptest` is unavailable in the offline build.
// Restore the dev-dependency and run with `--features proptest-tests`.

use proptest::prelude::*;
use svagc_metrics::{PerfCounters, SetAssocCache};

proptest! {
    /// A fully-associative-equivalent cache with capacity C lines never
    /// misses on a working set of at most C distinct lines (after the cold
    /// pass) — LRU's basic guarantee.
    #[test]
    fn lru_retains_small_working_sets(
        distinct in 1usize..16,
        accesses in proptest::collection::vec(0usize..16, 1..300),
    ) {
        // 16 lines of capacity in one set (16-way, one set).
        let mut c = SetAssocCache::new(16 * 64, 16, 64);
        let lines: Vec<u64> = (0..distinct as u64).map(|i| i * 64).collect();
        // Cold pass.
        for &l in &lines {
            c.access(l);
        }
        c.reset_stats();
        for &a in &accesses {
            c.access(lines[a % distinct]);
        }
        let (_, misses) = c.stats();
        prop_assert_eq!(misses, 0, "working set fits: no misses allowed");
    }

    /// Inclusion monotonicity: a bigger cache of the same shape never has
    /// more misses on the same trace.
    #[test]
    fn bigger_cache_never_misses_more(
        trace in proptest::collection::vec(0u64..256, 1..400),
    ) {
        let mut small = SetAssocCache::new(8 * 64, 8, 64); // 8 lines, 1 set
        let mut big = SetAssocCache::new(32 * 64, 32, 64); // 32 lines, 1 set
        for &t in &trace {
            small.access(t * 64);
            big.access(t * 64);
        }
        let (_, m_small) = small.stats();
        let (_, m_big) = big.stats();
        prop_assert!(m_big <= m_small, "big {m_big} vs small {m_small}");
    }

    /// Counter algebra: (a + b) - b == a for arbitrary counters.
    #[test]
    fn perf_counter_algebra(vals in proptest::collection::vec(0u64..1_000_000, 16)) {
        let build = |off: usize| {
            let mut c = PerfCounters::new();
            c.syscalls = vals[off % 16];
            c.pte_swaps = vals[(off + 1) % 16];
            c.bytes_copied = vals[(off + 2) % 16];
            c.tlb_lookups = vals[(off + 3) % 16];
            c.tlb_misses = vals[(off + 4) % 16].min(c.tlb_lookups);
            c.ipis_sent = vals[(off + 5) % 16];
            c.cache_references = vals[(off + 6) % 16];
            c.cache_misses = vals[(off + 7) % 16].min(c.cache_references);
            c
        };
        let a = build(0);
        let b = build(5);
        prop_assert_eq!((a + b) - b, a);
        let mut m = PerfCounters::new();
        m.merge(&a);
        m.merge(&b);
        prop_assert_eq!(m, a + b);
    }
}
