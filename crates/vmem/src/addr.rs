//! Virtual/physical addresses and x86-64 4-KiB-page constants.
//!
//! The layout mirrors Linux on x86-64 with 4-level paging (the `p4d` level
//! folded into `pgd`, as on the paper's 4.17 kernel):
//!
//! ```text
//! 47        39 38       30 29       21 20       12 11         0
//! +-----------+-----------+-----------+-----------+------------+
//! | PGD index | PUD index | PMD index | PTE index | page offset|
//! +-----------+-----------+-----------+-----------+------------+
//! ```

use std::fmt;
use std::ops::{Add, Sub};

/// log2 of the page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Bytes per machine word.
pub const WORD_BYTES: u64 = 8;
/// Words per page.
pub const WORDS_PER_PAGE: u64 = PAGE_SIZE / WORD_BYTES;
/// Entries per page-table level.
pub const ENTRIES_PER_TABLE: usize = 512;
/// Bits of index per page-table level.
pub const LEVEL_BITS: u32 = 9;

/// A virtual address in a simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The raw address.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Virtual page number (address >> 12).
    #[inline]
    pub fn vpn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Is this address page-aligned?
    #[inline]
    pub fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Round up to the next page boundary (identity if aligned).
    #[inline]
    pub fn align_up(self) -> VirtAddr {
        VirtAddr((self.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
    }

    /// Round down to the containing page boundary.
    #[inline]
    pub fn align_down(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// PGD (top-level) index, bits 39..=47.
    #[inline]
    pub fn pgd_index(self) -> usize {
        ((self.0 >> 39) & 0x1ff) as usize
    }

    /// PUD index, bits 30..=38.
    #[inline]
    pub fn pud_index(self) -> usize {
        ((self.0 >> 30) & 0x1ff) as usize
    }

    /// PMD index, bits 21..=29.
    #[inline]
    pub fn pmd_index(self) -> usize {
        ((self.0 >> 21) & 0x1ff) as usize
    }

    /// PTE index, bits 12..=20.
    #[inline]
    pub fn pte_index(self) -> usize {
        ((self.0 >> 12) & 0x1ff) as usize
    }

    /// The PMD prefix (everything above the PTE index): two pages share a
    /// PTE table — and thus a cached PMD walk — iff their prefixes match.
    #[inline]
    pub fn pmd_prefix(self) -> u64 {
        self.0 >> 21
    }

    /// Address `pages` pages after this one.
    #[inline]
    pub fn add_pages(self, pages: u64) -> VirtAddr {
        VirtAddr(self.0 + pages * PAGE_SIZE)
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#014x}", self.0)
    }
}

/// A physical address in the simulated frame pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The raw address.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The containing frame.
    #[inline]
    pub fn frame(self) -> FrameId {
        FrameId((self.0 >> PAGE_SHIFT) as u32)
    }

    /// Byte offset within the frame.
    #[inline]
    pub fn frame_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;
    #[inline]
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#012x}", self.0)
    }
}

/// Identifier of one 4-KiB physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u32);

impl FrameId {
    /// Base physical address of the frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr((self.0 as u64) << PAGE_SHIFT)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame:{}", self.0)
    }
}

/// An address-space identifier (one per simulated process/JVM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asid(pub u16);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_constants_consistent() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(WORDS_PER_PAGE, 512);
        assert_eq!(ENTRIES_PER_TABLE, 512);
    }

    #[test]
    fn index_extraction_matches_linux_layout() {
        // va = pgd 1, pud 2, pmd 3, pte 4, offset 5.
        let va = VirtAddr((1 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 5);
        assert_eq!(va.pgd_index(), 1);
        assert_eq!(va.pud_index(), 2);
        assert_eq!(va.pmd_index(), 3);
        assert_eq!(va.pte_index(), 4);
        assert_eq!(va.page_offset(), 5);
    }

    #[test]
    fn alignment_helpers() {
        let va = VirtAddr(0x1001);
        assert!(!va.is_page_aligned());
        assert_eq!(va.align_up(), VirtAddr(0x2000));
        assert_eq!(va.align_down(), VirtAddr(0x1000));
        assert_eq!(VirtAddr(0x2000).align_up(), VirtAddr(0x2000));
    }

    #[test]
    fn pmd_prefix_shared_within_2mib() {
        let a = VirtAddr(0x40000000);
        let b = a.add_pages(511); // last page of the same PTE table
        let c = a.add_pages(512); // first page of the next PTE table
        assert_eq!(a.pmd_prefix(), b.pmd_prefix());
        assert_ne!(a.pmd_prefix(), c.pmd_prefix());
    }

    #[test]
    fn phys_frame_roundtrip() {
        let f = FrameId(42);
        let pa = f.base() + 123;
        assert_eq!(pa.frame(), f);
        assert_eq!(pa.frame_offset(), 123);
    }
}
