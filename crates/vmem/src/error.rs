//! Error types for the virtual-memory subsystem.

use crate::addr::{PhysAddr, VirtAddr};
use std::fmt;

/// Failures of the simulated memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// Physical address outside the frame pool (or straddling its end).
    BadPhysAddr(PhysAddr),
    /// Virtual address has no present mapping.
    NotMapped(VirtAddr),
    /// Virtual address already mapped (double map).
    AlreadyMapped(VirtAddr),
    /// The frame pool is exhausted.
    OutOfFrames,
    /// SwapVA operand error (misaligned or zero-length range).
    BadSwapRange {
        /// First operand.
        a: VirtAddr,
        /// Second operand.
        b: VirtAddr,
        /// Page count requested.
        pages: u64,
    },
    /// SwapVA operands alias the same range (`a == b`): swapping a range
    /// with itself is always a caller bug, so it is rejected rather than
    /// silently treated as a no-op.
    AliasedSwapRange {
        /// The (shared) operand.
        a: VirtAddr,
        /// Page count requested.
        pages: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadPhysAddr(pa) => write!(f, "physical address out of range: {pa}"),
            VmError::NotMapped(va) => write!(f, "virtual address not mapped: {va}"),
            VmError::AlreadyMapped(va) => write!(f, "virtual address already mapped: {va}"),
            VmError::OutOfFrames => write!(f, "out of physical frames"),
            VmError::BadSwapRange { a, b, pages } => {
                write!(f, "bad swap range: {a} <-> {b} ({pages} pages)")
            }
            VmError::AliasedSwapRange { a, pages } => {
                write!(f, "self-aliasing swap range: {a} <-> {a} ({pages} pages)")
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(format!("{}", VmError::OutOfFrames).contains("out of"));
        assert!(format!("{}", VmError::NotMapped(VirtAddr(0x1000))).contains("0x"));
    }
}
