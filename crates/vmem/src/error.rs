//! Error types for the virtual-memory subsystem.

use crate::addr::{FrameId, PhysAddr, VirtAddr};
use crate::pool::AllocContext;
use std::fmt;

/// Failures of the simulated memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// Physical address outside the frame pool (or straddling its end).
    BadPhysAddr(PhysAddr),
    /// Virtual address has no present mapping.
    NotMapped(VirtAddr),
    /// Virtual address already mapped (double map).
    AlreadyMapped(VirtAddr),
    /// The frame pool is exhausted.
    OutOfFrames,
    /// SwapVA operand error (misaligned or zero-length range).
    BadSwapRange {
        /// First operand.
        a: VirtAddr,
        /// Second operand.
        b: VirtAddr,
        /// Page count requested.
        pages: u64,
    },
    /// SwapVA operands alias the same range (`a == b`): swapping a range
    /// with itself is always a caller bug, so it is rejected rather than
    /// silently treated as a no-op.
    AliasedSwapRange {
        /// The (shared) operand.
        a: VirtAddr,
        /// Page count requested.
        pages: u64,
    },
    /// A frame id outside the allocator's (or tenant's) range was freed or
    /// charged.
    FrameOutOfRange(FrameId),
    /// A frame that is not currently allocated was freed (double free).
    FrameNotAllocated(FrameId),
    /// A tenant's frame-pool quota would be exceeded; the allocation was
    /// denied without touching any other tenant's budget.
    QuotaExceeded {
        /// The tenant whose charge was denied.
        tenant: u16,
        /// What the denied allocation was for.
        ctx: AllocContext,
    },
    /// The ownership map shows the frame charged to another tenant (or
    /// charged twice) — an isolation invariant violation.
    DualOwnership {
        /// Tenant-local frame id.
        frame: u32,
        /// Current owner recorded in the map.
        owner: u16,
        /// Tenant that attempted the conflicting charge/release.
        claimant: u16,
    },
    /// The tenant id is not registered with the frame pool (or is already
    /// taken, for registration).
    NoSuchTenant(u16),
    /// A page demoted to the far-memory tier could not be fetched back
    /// (the device failed permanently while holding the only copy). The
    /// access cannot be satisfied; the run must surface device loss, not
    /// fabricate data.
    FarPageLost(FrameId),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadPhysAddr(pa) => write!(f, "physical address out of range: {pa}"),
            VmError::NotMapped(va) => write!(f, "virtual address not mapped: {va}"),
            VmError::AlreadyMapped(va) => write!(f, "virtual address already mapped: {va}"),
            VmError::OutOfFrames => write!(f, "out of physical frames"),
            VmError::BadSwapRange { a, b, pages } => {
                write!(f, "bad swap range: {a} <-> {b} ({pages} pages)")
            }
            VmError::AliasedSwapRange { a, pages } => {
                write!(f, "self-aliasing swap range: {a} <-> {a} ({pages} pages)")
            }
            VmError::FrameOutOfRange(frame) => {
                write!(f, "frame id out of range: {}", frame.0)
            }
            VmError::FrameNotAllocated(frame) => {
                write!(f, "frame not allocated (double free?): {}", frame.0)
            }
            VmError::QuotaExceeded { tenant, ctx } => {
                write!(f, "tenant{tenant} frame quota exceeded ({} context)", ctx.name())
            }
            VmError::DualOwnership { frame, owner, claimant } => {
                write!(
                    f,
                    "frame {frame} ownership conflict: owned by tenant{owner}, claimed by tenant{claimant}"
                )
            }
            VmError::NoSuchTenant(t) => write!(f, "tenant{t} not registered with the frame pool"),
            VmError::FarPageLost(frame) => {
                write!(f, "far-tier page lost: frame {} unfetchable (device failed)", frame.0)
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(format!("{}", VmError::OutOfFrames).contains("out of"));
        assert!(format!("{}", VmError::NotMapped(VirtAddr(0x1000))).contains("0x"));
    }
}
