//! Simulated physical memory: a pool of 4-KiB frames plus an allocator.
//!
//! Objects really live here — GC correctness tests read heap contents back
//! through translations after compaction, so a PTE swap that corrupted data
//! would be caught, not just mis-costed.

use crate::addr::{FrameId, PhysAddr, PAGE_SIZE};
use crate::error::VmError;

/// Flat physical memory of `frames * 4096` bytes.
#[derive(Debug)]
pub struct PhysMem {
    bytes: Vec<u8>,
    frames: u32,
}

impl PhysMem {
    /// Allocate a pool of `frames` zeroed frames.
    pub fn new(frames: u32) -> PhysMem {
        PhysMem {
            bytes: vec![0u8; frames as usize * PAGE_SIZE as usize],
            frames,
        }
    }

    /// Number of frames in the pool.
    pub fn frame_count(&self) -> u32 {
        self.frames
    }

    /// Total bytes.
    pub fn byte_count(&self) -> u64 {
        self.bytes.len() as u64
    }

    #[inline]
    fn check(&self, pa: PhysAddr, len: u64) -> Result<usize, VmError> {
        let start = pa.get();
        let end = start.checked_add(len).ok_or(VmError::BadPhysAddr(pa))?;
        if end > self.bytes.len() as u64 {
            return Err(VmError::BadPhysAddr(pa));
        }
        Ok(start as usize)
    }

    /// Read one 8-byte word (must not straddle the pool end).
    #[inline]
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64, VmError> {
        let i = self.check(pa, 8)?;
        Ok(u64::from_le_bytes(
            self.bytes[i..i + 8]
                .try_into()
                .expect("bounds invariant: check() guarantees an 8-byte slice"),
        ))
    }

    /// Write one 8-byte word.
    #[inline]
    pub fn write_u64(&mut self, pa: PhysAddr, val: u64) -> Result<(), VmError> {
        let i = self.check(pa, 8)?;
        self.bytes[i..i + 8].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Read `buf.len()` bytes at `pa`.
    pub fn read_bytes(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), VmError> {
        let i = self.check(pa, buf.len() as u64)?;
        buf.copy_from_slice(&self.bytes[i..i + buf.len()]);
        Ok(())
    }

    /// Append `len` bytes at `pa` to `out` — `read_bytes` without the
    /// caller having to pre-size (and zero-fill) a destination buffer.
    pub fn read_append(&self, pa: PhysAddr, len: u64, out: &mut Vec<u8>) -> Result<(), VmError> {
        let i = self.check(pa, len)?;
        out.extend_from_slice(&self.bytes[i..i + len as usize]);
        Ok(())
    }

    /// Write `buf` at `pa`.
    pub fn write_bytes(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<(), VmError> {
        let i = self.check(pa, buf.len() as u64)?;
        self.bytes[i..i + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Copy `len` bytes from `src` to `dst` (handles overlap like memmove).
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) -> Result<(), VmError> {
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        self.bytes.copy_within(s..s + len as usize, d);
        Ok(())
    }

    /// Zero a whole frame.
    pub fn zero_frame(&mut self, frame: FrameId) -> Result<(), VmError> {
        let i = self.check(frame.base(), PAGE_SIZE)?;
        self.bytes[i..i + PAGE_SIZE as usize].fill(0);
        Ok(())
    }

    /// Borrow a frame's bytes (tests, checksums).
    pub fn frame_bytes(&self, frame: FrameId) -> Result<&[u8], VmError> {
        let i = self.check(frame.base(), PAGE_SIZE)?;
        Ok(&self.bytes[i..i + PAGE_SIZE as usize])
    }
}

/// Free-list frame allocator over a [`PhysMem`]-sized pool.
#[derive(Debug)]
pub struct FrameAllocator {
    /// Next never-allocated frame (bump region).
    next: u32,
    limit: u32,
    /// Returned frames, reused LIFO.
    free: Vec<FrameId>,
    allocated: u32,
    /// High-water mark of simultaneously live frames.
    peak: u32,
}

impl FrameAllocator {
    /// Allocator over frames `0..limit`.
    pub fn new(limit: u32) -> FrameAllocator {
        FrameAllocator {
            next: 0,
            limit,
            free: Vec::new(),
            allocated: 0,
            peak: 0,
        }
    }

    /// Allocate one frame.
    pub fn alloc(&mut self) -> Result<FrameId, VmError> {
        let f = if let Some(f) = self.free.pop() {
            f
        } else if self.next < self.limit {
            let f = FrameId(self.next);
            self.next += 1;
            f
        } else {
            return Err(VmError::OutOfFrames);
        };
        self.allocated += 1;
        self.peak = self.peak.max(self.allocated);
        Ok(f)
    }

    /// Allocate `n` frames (not necessarily contiguous).
    pub fn alloc_many(&mut self, n: u32) -> Result<Vec<FrameId>, VmError> {
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            match self.alloc() {
                Ok(f) => v.push(f),
                Err(e) => {
                    for f in v {
                        self.free(f);
                    }
                    return Err(e);
                }
            }
        }
        Ok(v)
    }

    /// Return a frame to the pool.
    pub fn free(&mut self, frame: FrameId) {
        debug_assert!(frame.0 < self.limit);
        self.allocated -= 1;
        self.free.push(frame);
    }

    /// Frames currently allocated.
    pub fn in_use(&self) -> u32 {
        self.allocated
    }

    /// Frames still available.
    pub fn available(&self) -> u32 {
        self.limit - self.next + self.free.len() as u32
    }

    /// High-water mark of live frames.
    pub fn peak(&self) -> u32 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut m = PhysMem::new(2);
        let pa = PhysAddr(4096 + 16);
        m.write_u64(pa, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(pa).unwrap(), 0xdead_beef_cafe_f00d);
        // Untouched memory is zero.
        assert_eq!(m.read_u64(PhysAddr(0)).unwrap(), 0);
    }

    #[test]
    fn bounds_are_enforced() {
        let m = PhysMem::new(1);
        assert!(m.read_u64(PhysAddr(4096)).is_err());
        assert!(m.read_u64(PhysAddr(4090)).is_err()); // straddles end
        assert!(m.read_u64(PhysAddr(u64::MAX)).is_err()); // overflow
    }

    #[test]
    fn byte_copy_handles_overlap() {
        let mut m = PhysMem::new(1);
        m.write_bytes(PhysAddr(0), b"abcdef").unwrap();
        m.copy(PhysAddr(0), PhysAddr(2), 4).unwrap();
        let mut out = [0u8; 6];
        m.read_bytes(PhysAddr(0), &mut out).unwrap();
        assert_eq!(&out, b"ababcd");
    }

    #[test]
    fn allocator_reuses_freed_frames() {
        let mut a = FrameAllocator::new(2);
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert!(a.alloc().is_err());
        a.free(f0);
        assert_eq!(a.alloc().unwrap(), f0);
        assert_eq!(a.in_use(), 2);
        assert_eq!(a.peak(), 2);
        let _ = f1;
    }

    #[test]
    fn alloc_many_rolls_back_on_failure() {
        let mut a = FrameAllocator::new(3);
        assert!(a.alloc_many(4).is_err());
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.alloc_many(3).unwrap().len(), 3);
    }

    #[test]
    fn zero_frame_clears() {
        let mut m = PhysMem::new(1);
        m.write_u64(PhysAddr(8), 7).unwrap();
        m.zero_frame(FrameId(0)).unwrap();
        assert_eq!(m.read_u64(PhysAddr(8)).unwrap(), 0);
    }
}
