//! Simulated physical memory: a pool of 4-KiB frames plus an allocator.
//!
//! Objects really live here — GC correctness tests read heap contents back
//! through translations after compaction, so a PTE swap that corrupted data
//! would be caught, not just mis-costed.

use crate::addr::{FrameId, PhysAddr, PAGE_SIZE};
use crate::error::VmError;
use crate::pool::{AllocContext, FrameLease};

/// Flat physical memory of `frames * 4096` bytes.
#[derive(Debug)]
pub struct PhysMem {
    bytes: Vec<u8>,
    frames: u32,
}

impl PhysMem {
    /// Allocate a pool of `frames` zeroed frames.
    pub fn new(frames: u32) -> PhysMem {
        PhysMem {
            bytes: vec![0u8; frames as usize * PAGE_SIZE as usize],
            frames,
        }
    }

    /// Number of frames in the pool.
    pub fn frame_count(&self) -> u32 {
        self.frames
    }

    /// Total bytes.
    pub fn byte_count(&self) -> u64 {
        self.bytes.len() as u64
    }

    #[inline]
    fn check(&self, pa: PhysAddr, len: u64) -> Result<usize, VmError> {
        let start = pa.get();
        let end = start.checked_add(len).ok_or(VmError::BadPhysAddr(pa))?;
        if end > self.bytes.len() as u64 {
            return Err(VmError::BadPhysAddr(pa));
        }
        Ok(start as usize)
    }

    /// Read one 8-byte word (must not straddle the pool end).
    #[inline]
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64, VmError> {
        let i = self.check(pa, 8)?;
        Ok(u64::from_le_bytes(
            self.bytes[i..i + 8]
                .try_into()
                .expect("bounds invariant: check() guarantees an 8-byte slice"),
        ))
    }

    /// Write one 8-byte word.
    #[inline]
    pub fn write_u64(&mut self, pa: PhysAddr, val: u64) -> Result<(), VmError> {
        let i = self.check(pa, 8)?;
        self.bytes[i..i + 8].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Read `buf.len()` bytes at `pa`.
    pub fn read_bytes(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<(), VmError> {
        let i = self.check(pa, buf.len() as u64)?;
        buf.copy_from_slice(&self.bytes[i..i + buf.len()]);
        Ok(())
    }

    /// Append `len` bytes at `pa` to `out` — `read_bytes` without the
    /// caller having to pre-size (and zero-fill) a destination buffer.
    pub fn read_append(&self, pa: PhysAddr, len: u64, out: &mut Vec<u8>) -> Result<(), VmError> {
        let i = self.check(pa, len)?;
        out.extend_from_slice(&self.bytes[i..i + len as usize]);
        Ok(())
    }

    /// Write `buf` at `pa`.
    pub fn write_bytes(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<(), VmError> {
        let i = self.check(pa, buf.len() as u64)?;
        self.bytes[i..i + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Copy `len` bytes from `src` to `dst` (handles overlap like memmove).
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) -> Result<(), VmError> {
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        self.bytes.copy_within(s..s + len as usize, d);
        Ok(())
    }

    /// Zero a whole frame.
    pub fn zero_frame(&mut self, frame: FrameId) -> Result<(), VmError> {
        let i = self.check(frame.base(), PAGE_SIZE)?;
        self.bytes[i..i + PAGE_SIZE as usize].fill(0);
        Ok(())
    }

    /// Borrow a frame's bytes (tests, checksums).
    pub fn frame_bytes(&self, frame: FrameId) -> Result<&[u8], VmError> {
        let i = self.check(frame.base(), PAGE_SIZE)?;
        Ok(&self.bytes[i..i + PAGE_SIZE as usize])
    }
}

/// Free-list frame allocator over a [`PhysMem`]-sized pool.
///
/// The allocator tracks an allocated-bitmap so `free` can reject
/// out-of-range and double-freed frames with a typed error instead of
/// silently corrupting the free list (and underflowing `allocated`) in
/// release builds. An optional [`FrameLease`] attaches the allocator to a
/// fleet-wide [`crate::FramePool`]: every alloc is charged against the
/// owning tenant's quota under the current [`AllocContext`], and every
/// free releases the charge.
#[derive(Debug)]
pub struct FrameAllocator {
    /// Next never-allocated frame (bump region).
    next: u32,
    limit: u32,
    /// Returned frames, reused LIFO.
    free: Vec<FrameId>,
    /// One bit per frame: is it currently allocated?
    bits: Vec<u64>,
    allocated: u32,
    /// High-water mark of simultaneously live frames.
    peak: u32,
    /// Invalid frees rejected (out of range or double free).
    free_errors: u64,
    /// Optional fleet budget; charged/released alongside alloc/free.
    lease: Option<FrameLease>,
    /// Attribution for subsequent allocations.
    ctx: AllocContext,
}

impl FrameAllocator {
    /// Allocator over frames `0..limit`.
    pub fn new(limit: u32) -> FrameAllocator {
        FrameAllocator {
            next: 0,
            limit,
            free: Vec::new(),
            bits: vec![0u64; limit.div_ceil(64) as usize],
            allocated: 0,
            peak: 0,
            free_errors: 0,
            lease: None,
            ctx: AllocContext::Heap,
        }
    }

    #[inline]
    fn bit(&self, frame: FrameId) -> bool {
        self.bits[(frame.0 / 64) as usize] & (1u64 << (frame.0 % 64)) != 0
    }

    #[inline]
    fn set_bit(&mut self, frame: FrameId, on: bool) {
        let mask = 1u64 << (frame.0 % 64);
        if on {
            self.bits[(frame.0 / 64) as usize] |= mask;
        } else {
            self.bits[(frame.0 / 64) as usize] &= !mask;
        }
    }

    /// Attach a fleet-budget lease; every subsequent alloc/free is charged
    /// to or released from the owning tenant's quota.
    pub fn attach_lease(&mut self, lease: FrameLease) {
        self.lease = Some(lease);
    }

    /// The attached fleet-budget lease, if any.
    pub fn lease(&self) -> Option<&FrameLease> {
        self.lease.as_ref()
    }

    /// Set the attribution context for subsequent allocations.
    pub fn set_context(&mut self, ctx: AllocContext) {
        self.ctx = ctx;
    }

    /// Current allocation attribution context.
    pub fn context(&self) -> AllocContext {
        self.ctx
    }

    /// Allocate one frame.
    pub fn alloc(&mut self) -> Result<FrameId, VmError> {
        // Pick the candidate first, charge the fleet budget, and only then
        // commit allocator state — a quota denial must leave the free list
        // and bump cursor untouched.
        let (f, from_free) = if let Some(&f) = self.free.last() {
            (f, true)
        } else if self.next < self.limit {
            (FrameId(self.next), false)
        } else {
            return Err(VmError::OutOfFrames);
        };
        if let Some(lease) = &self.lease {
            lease.charge(self.ctx, f)?;
        }
        if from_free {
            self.free.pop();
        } else {
            self.next += 1;
        }
        self.set_bit(f, true);
        self.allocated += 1;
        self.peak = self.peak.max(self.allocated);
        Ok(f)
    }

    /// Allocate `n` frames (not necessarily contiguous).
    pub fn alloc_many(&mut self, n: u32) -> Result<Vec<FrameId>, VmError> {
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            match self.alloc() {
                Ok(f) => v.push(f),
                Err(e) => {
                    for f in v {
                        self.free(f).expect("rollback of a just-allocated frame");
                    }
                    return Err(e);
                }
            }
        }
        Ok(v)
    }

    /// Return a frame to the pool. Out-of-range and double frees are
    /// rejected with a typed error (and counted) instead of corrupting the
    /// free list; counters never underflow.
    pub fn free(&mut self, frame: FrameId) -> Result<(), VmError> {
        if frame.0 >= self.limit {
            self.free_errors += 1;
            return Err(VmError::FrameOutOfRange(frame));
        }
        if !self.bit(frame) {
            self.free_errors += 1;
            return Err(VmError::FrameNotAllocated(frame));
        }
        if let Some(lease) = &self.lease {
            lease.release(frame)?;
        }
        self.set_bit(frame, false);
        self.allocated = self.allocated.saturating_sub(1);
        self.free.push(frame);
        Ok(())
    }

    /// Frames currently allocated.
    pub fn in_use(&self) -> u32 {
        self.allocated
    }

    /// Frames still available.
    pub fn available(&self) -> u32 {
        self.limit - self.next + self.free.len() as u32
    }

    /// High-water mark of live frames.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Invalid frees rejected over the allocator's lifetime.
    pub fn free_errors(&self) -> u64 {
        self.free_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut m = PhysMem::new(2);
        let pa = PhysAddr(4096 + 16);
        m.write_u64(pa, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(pa).unwrap(), 0xdead_beef_cafe_f00d);
        // Untouched memory is zero.
        assert_eq!(m.read_u64(PhysAddr(0)).unwrap(), 0);
    }

    #[test]
    fn bounds_are_enforced() {
        let m = PhysMem::new(1);
        assert!(m.read_u64(PhysAddr(4096)).is_err());
        assert!(m.read_u64(PhysAddr(4090)).is_err()); // straddles end
        assert!(m.read_u64(PhysAddr(u64::MAX)).is_err()); // overflow
    }

    #[test]
    fn byte_copy_handles_overlap() {
        let mut m = PhysMem::new(1);
        m.write_bytes(PhysAddr(0), b"abcdef").unwrap();
        m.copy(PhysAddr(0), PhysAddr(2), 4).unwrap();
        let mut out = [0u8; 6];
        m.read_bytes(PhysAddr(0), &mut out).unwrap();
        assert_eq!(&out, b"ababcd");
    }

    #[test]
    fn allocator_reuses_freed_frames() {
        let mut a = FrameAllocator::new(2);
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert!(a.alloc().is_err());
        a.free(f0).unwrap();
        assert_eq!(a.alloc().unwrap(), f0);
        assert_eq!(a.in_use(), 2);
        assert_eq!(a.peak(), 2);
        let _ = f1;
    }

    #[test]
    fn alloc_many_rolls_back_on_failure() {
        let mut a = FrameAllocator::new(3);
        assert!(a.alloc_many(4).is_err());
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.alloc_many(3).unwrap().len(), 3);
    }

    #[test]
    fn free_rejects_out_of_range_and_double_free() {
        let mut a = FrameAllocator::new(4);
        let f = a.alloc().unwrap();
        // Out of range: typed error, counter untouched.
        assert_eq!(
            a.free(FrameId(4)),
            Err(VmError::FrameOutOfRange(FrameId(4)))
        );
        assert_eq!(a.in_use(), 1);
        // Never-allocated frame.
        assert_eq!(
            a.free(FrameId(2)),
            Err(VmError::FrameNotAllocated(FrameId(2)))
        );
        // Legitimate free, then double free of the same frame.
        a.free(f).unwrap();
        assert_eq!(a.free(f), Err(VmError::FrameNotAllocated(f)));
        // No underflow even after repeated invalid frees.
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.free_errors(), 3);
        // The free list was never corrupted: both frames still allocatable.
        assert_eq!(a.alloc_many(4).unwrap().len(), 4);
    }

    #[test]
    fn freed_frames_are_reused_in_lifo_order() {
        let mut a = FrameAllocator::new(8);
        let frames = a.alloc_many(5).unwrap();
        // Free 1, 3, 0 — LIFO reuse must hand them back as 0, 3, 1.
        a.free(frames[1]).unwrap();
        a.free(frames[3]).unwrap();
        a.free(frames[0]).unwrap();
        assert_eq!(a.alloc().unwrap(), frames[0]);
        assert_eq!(a.alloc().unwrap(), frames[3]);
        assert_eq!(a.alloc().unwrap(), frames[1]);
        // Free list drained: next alloc comes from the bump region.
        assert_eq!(a.alloc().unwrap(), FrameId(5));
    }

    #[test]
    fn peak_tracks_high_water_across_interleaved_churn() {
        let mut a = FrameAllocator::new(16);
        let first = a.alloc_many(6).unwrap();
        assert_eq!(a.peak(), 6);
        for f in &first[..4] {
            a.free(*f).unwrap();
        }
        assert_eq!(a.in_use(), 2);
        // Peak is a high-water mark: unchanged by frees.
        assert_eq!(a.peak(), 6);
        // Climb above the previous peak through a mix of reuse and bump.
        let second = a.alloc_many(7).unwrap();
        assert_eq!(a.in_use(), 9);
        assert_eq!(a.peak(), 9);
        for f in second {
            a.free(f).unwrap();
        }
        assert_eq!(a.peak(), 9);
        assert_eq!(a.in_use(), 2);
    }

    #[test]
    fn alloc_many_rollback_interacts_with_free_list() {
        let mut a = FrameAllocator::new(4);
        let keep = a.alloc_many(2).unwrap();
        a.free(keep[0]).unwrap();
        // 3 available (1 free-listed + 2 bump); asking for 4 must roll back
        // cleanly and leave all 3 allocatable afterwards.
        assert!(a.alloc_many(4).is_err());
        assert_eq!(a.in_use(), 1);
        assert_eq!(a.alloc_many(3).unwrap().len(), 3);
        assert_eq!(a.in_use(), 4);
        assert_eq!(a.peak(), 4);
    }

    #[test]
    fn zero_frame_clears() {
        let mut m = PhysMem::new(1);
        m.write_u64(PhysAddr(8), 7).unwrap();
        m.zero_frame(FrameId(0)).unwrap();
        assert_eq!(m.read_u64(PhysAddr(8)).unwrap(), 0);
    }
}
