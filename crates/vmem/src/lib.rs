//! Simulated physical memory, x86-64-style 4-level page tables, and
//! per-core TLBs — the substrate SwapVA operates on.
//!
//! The paper implements SwapVA inside Linux 4.17; this crate provides a
//! structurally faithful userspace stand-in:
//!
//! * [`frame`] — a pool of real 4-KiB frames. Heap objects genuinely live
//!   here, so "zero-copy" claims are checked against actual bytes.
//! * [`pagetable`] — PGD→PUD→PMD→PTE radix tables whose walks report the
//!   number of levels touched, making the PMD-cache optimization (Fig. 7/8)
//!   measurable. [`pagetable::PmdCache`] models the cache itself.
//! * [`tlb`] — two-level per-core TLBs with ASID tagging and precise
//!   flush operations (`all` / `asid` / `page`), the state SwapVA's
//!   shootdown protocol manages.
//! * [`space`] — address spaces (one per simulated JVM) plus the
//!   [`space::Vmem`] bundle for mapping regions and reading/writing through
//!   translations.
//!
//! Everything here is *functional and uncosted*; `svagc-kernel` wraps these
//! primitives with cycle/event charging.

#![warn(missing_docs)]

pub mod addr;
pub mod error;
pub mod frame;
pub mod pagetable;
pub mod pool;
pub mod pte;
pub mod space;
pub mod tlb;

pub use addr::{
    Asid, FrameId, PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE, WORDS_PER_PAGE, WORD_BYTES,
};
pub use error::VmError;
pub use frame::{FrameAllocator, PhysMem};
pub use pagetable::{PageTable, PmdCache, PteTable, WALK_LEVELS_CACHED, WALK_LEVELS_FULL};
pub use pool::{AllocContext, FrameLease, FramePool, Pressure, TenantFrameStats, TenantId};
pub use pte::{Pte, PteFlags};
pub use space::{AddressSpace, Vmem, USER_BASE};
pub use tlb::{OracleStats, Tlb, TlbConfig, TlbHit, TlbOracle};
