//! The 4-level radix page table and the PMD walk cache.
//!
//! Structure mirrors x86-64 with 4-KiB pages: PGD → PUD → PMD → PTE table,
//! 512 entries each, with the `p4d` level folded (as on Linux 4.17 with
//! 4-level paging). Walks report how many levels they touched so the kernel
//! layer can charge the right number of memory accesses — this is what makes
//! the Fig. 8 PMD-caching experiment measurable.
//!
//! Algorithm 1 takes the PTE-table spinlock around each swap. The host-side
//! simulation mutates tables from one thread, so locks are modeled as cost
//! events (`CostParams::lock_unlock`) charged by the kernel crate rather
//! than real mutexes.

use crate::addr::{PhysAddr, VirtAddr, ENTRIES_PER_TABLE};
use crate::error::VmError;
use crate::pte::Pte;

/// Levels touched by an *uncached* PTE walk: PGD, PUD, PMD, PTE
/// (p4d folded → free).
pub const WALK_LEVELS_FULL: u8 = 4;
/// Levels touched when the PMD pointer is cached: only the PTE table.
pub const WALK_LEVELS_CACHED: u8 = 1;

/// Leaf level: 512 PTEs.
#[derive(Debug)]
pub struct PteTable {
    entries: Box<[Pte]>,
}

impl PteTable {
    fn new() -> PteTable {
        PteTable {
            entries: vec![Pte::NONE; ENTRIES_PER_TABLE].into_boxed_slice(),
        }
    }

    /// Entry at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Pte {
        self.entries[idx]
    }

    /// Overwrite entry at `idx`.
    #[inline]
    pub fn set(&mut self, idx: usize, pte: Pte) {
        self.entries[idx] = pte;
    }
}

#[derive(Debug)]
struct Pmd {
    tables: Box<[Option<Box<PteTable>>]>,
}

#[derive(Debug)]
struct Pud {
    pmds: Box<[Option<Box<Pmd>>]>,
}

fn empty_slots<T>() -> Box<[Option<T>]> {
    (0..ENTRIES_PER_TABLE).map(|_| None).collect()
}

/// One process's 4-level page table.
#[derive(Debug)]
pub struct PageTable {
    pgd: Box<[Option<Box<Pud>>]>,
    /// Directory pages allocated (PUD+PMD+PTE tables) — table-memory
    /// overhead statistic.
    tables_allocated: u64,
    /// Present leaf mappings.
    mapped: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// An empty table.
    pub fn new() -> PageTable {
        PageTable {
            pgd: empty_slots(),
            tables_allocated: 0,
            mapped: 0,
        }
    }

    /// Number of directory/leaf table pages allocated.
    pub fn tables_allocated(&self) -> u64 {
        self.tables_allocated
    }

    /// Number of present leaf mappings.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    fn pte_table(&self, va: VirtAddr) -> Option<&PteTable> {
        self.pgd[va.pgd_index()]
            .as_deref()?
            .pmds[va.pud_index()]
            .as_deref()?
            .tables[va.pmd_index()]
            .as_deref()
    }

    fn pte_table_mut(&mut self, va: VirtAddr, create: bool) -> Option<&mut PteTable> {
        let tables = &mut self.tables_allocated;
        let pud = match &mut self.pgd[va.pgd_index()] {
            Some(p) => p,
            slot @ None if create => {
                *tables += 1;
                slot.insert(Box::new(Pud {
                    pmds: empty_slots(),
                }))
            }
            None => return None,
        };
        let pmd = match &mut pud.pmds[va.pud_index()] {
            Some(p) => p,
            slot @ None if create => {
                *tables += 1;
                slot.insert(Box::new(Pmd {
                    tables: empty_slots(),
                }))
            }
            None => return None,
        };
        match &mut pmd.tables[va.pmd_index()] {
            Some(t) => Some(t),
            slot @ None if create => {
                *tables += 1;
                Some(slot.insert(Box::new(PteTable::new())))
            }
            None => None,
        }
    }

    /// Read the PTE for `va`, if any table path exists.
    #[inline]
    pub fn pte(&self, va: VirtAddr) -> Option<Pte> {
        self.pte_table(va).map(|t| t.get(va.pte_index()))
    }

    /// Translate a virtual address to a physical one.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, VmError> {
        match self.pte(va) {
            Some(pte) if pte.present() => Ok(pte.frame().base() + va.page_offset()),
            _ => {
                Err(VmError::NotMapped(va))
            }
        }
    }

    /// Install a mapping. Fails if `va` is already mapped.
    pub fn map(&mut self, va: VirtAddr, pte: Pte) -> Result<(), VmError> {
        debug_assert!(pte.present());
        let idx = va.pte_index();
        let table = self
            .pte_table_mut(va, true)
            .expect("page-table invariant: create=true always yields a leaf table");
        if table.get(idx).present() {
            return Err(VmError::AlreadyMapped(va));
        }
        table.set(idx, pte);
        self.mapped += 1;
        Ok(())
    }

    /// Remove a mapping, returning the old PTE.
    pub fn unmap(&mut self, va: VirtAddr) -> Result<Pte, VmError> {
        let idx = va.pte_index();
        let table = self
            .pte_table_mut(va, false)
            .ok_or(VmError::NotMapped(va))?;
        let old = table.get(idx);
        if !old.present() {
            return Err(VmError::NotMapped(va));
        }
        table.set(idx, Pte::NONE);
        self.mapped -= 1;
        Ok(old)
    }

    /// Read the raw PTE word for `va` (Algorithm 2's `GETPTE`).
    pub fn read_pte_raw(&self, va: VirtAddr) -> Result<u64, VmError> {
        self.pte(va)
            .filter(|p| p.present())
            .map(Pte::raw)
            .ok_or(VmError::NotMapped(va))
    }

    /// Overwrite the raw PTE word for `va`. The slot's table path must
    /// already exist (SwapVA only touches mapped ranges).
    pub fn write_pte_raw(&mut self, va: VirtAddr, raw: u64) -> Result<(), VmError> {
        let idx = va.pte_index();
        let table = self
            .pte_table_mut(va, false)
            .ok_or(VmError::NotMapped(va))?;
        let was = table.get(idx).present();
        let now = Pte::from_raw(raw).present();
        table.set(idx, Pte::from_raw(raw));
        match (was, now) {
            (false, true) => self.mapped += 1,
            (true, false) => self.mapped -= 1,
            _ => {}
        }
        Ok(())
    }

    /// Exchange the PTEs of two mapped pages (the core of Algorithm 1,
    /// line 16). Both must be present.
    ///
    /// ```
    /// use svagc_vmem::{FrameId, PageTable, Pte, PteFlags, VirtAddr};
    ///
    /// let mut pt = PageTable::new();
    /// let (a, b) = (VirtAddr(0x1000), VirtAddr(0x2000));
    /// pt.map(a, Pte::map(FrameId(7), PteFlags::WRITABLE)).unwrap();
    /// pt.map(b, Pte::map(FrameId(9), PteFlags::WRITABLE)).unwrap();
    /// pt.swap_ptes(a, b).unwrap();
    /// assert_eq!(pt.pte(a).unwrap().frame(), FrameId(9));
    /// assert_eq!(pt.pte(b).unwrap().frame(), FrameId(7));
    /// ```
    pub fn swap_ptes(&mut self, va1: VirtAddr, va2: VirtAddr) -> Result<(), VmError> {
        let a = self.read_pte_raw(va1)?;
        let b = self.read_pte_raw(va2)?;
        self.write_pte_raw(va1, b)?;
        self.write_pte_raw(va2, a)?;
        Ok(())
    }
}

/// The PMD walk cache of Fig. 7: consecutive pages usually share a PTE
/// table, so the PUD/PMD prefix lookups (steps "1" in the figure) can be
/// skipped, leaving only the PTE-table index (step "2").
///
/// Functionally the walk result is identical; the cache changes only how
/// many table levels are *charged*, which is what the walker reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct PmdCache {
    last_prefix: Option<u64>,
    hits: u64,
    misses: u64,
}

impl PmdCache {
    /// A cold cache.
    pub fn new() -> PmdCache {
        PmdCache::default()
    }

    /// Record a walk to `va`; returns how many table levels it touches
    /// (4 cold / different PTE table, 1 on a cache hit).
    #[inline]
    pub fn walk_levels(&mut self, va: VirtAddr) -> u8 {
        let prefix = va.pmd_prefix();
        if self.last_prefix == Some(prefix) {
            self.hits += 1;
            WALK_LEVELS_CACHED
        } else {
            self.last_prefix = Some(prefix);
            self.misses += 1;
            WALK_LEVELS_FULL
        }
    }

    /// Invalidate (e.g. after the table structure changes).
    pub fn invalidate(&mut self) {
        self.last_prefix = None;
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::FrameId;
    use crate::pte::PteFlags;

    fn va(x: u64) -> VirtAddr {
        VirtAddr(x)
    }

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        let a = va(0x4000_0000);
        pt.map(a, Pte::map(FrameId(3), PteFlags::WRITABLE)).unwrap();
        assert_eq!(pt.translate(a + 16).unwrap(), PhysAddr(3 * 4096 + 16));
        assert_eq!(pt.mapped_pages(), 1);
        let old = pt.unmap(a).unwrap();
        assert_eq!(old.frame(), FrameId(3));
        assert!(pt.translate(a).is_err());
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        let a = va(0x1000);
        pt.map(a, Pte::map(FrameId(1), PteFlags::WRITABLE)).unwrap();
        assert_eq!(
            pt.map(a, Pte::map(FrameId(2), PteFlags::WRITABLE)),
            Err(VmError::AlreadyMapped(a))
        );
    }

    #[test]
    fn unmap_missing_rejected() {
        let mut pt = PageTable::new();
        assert_eq!(pt.unmap(va(0x1000)), Err(VmError::NotMapped(va(0x1000))));
    }

    #[test]
    fn table_allocation_is_lazy_and_counted() {
        let mut pt = PageTable::new();
        assert_eq!(pt.tables_allocated(), 0);
        pt.map(va(0x1000), Pte::map(FrameId(1), PteFlags::WRITABLE))
            .unwrap();
        // One PUD + one PMD + one PTE table.
        assert_eq!(pt.tables_allocated(), 3);
        // Same 2 MiB region: no new tables.
        pt.map(va(0x2000), Pte::map(FrameId(2), PteFlags::WRITABLE))
            .unwrap();
        assert_eq!(pt.tables_allocated(), 3);
        // Different PMD entry (next 2 MiB): one new PTE table.
        pt.map(va(0x20_0000), Pte::map(FrameId(3), PteFlags::WRITABLE))
            .unwrap();
        assert_eq!(pt.tables_allocated(), 4);
    }

    #[test]
    fn swap_ptes_exchanges_frames() {
        let mut pt = PageTable::new();
        let a = va(0x1000);
        let b = va(0x8000_0000); // different PUD subtree
        pt.map(a, Pte::map(FrameId(10), PteFlags::WRITABLE)).unwrap();
        pt.map(b, Pte::map(FrameId(20), PteFlags::WRITABLE)).unwrap();
        pt.swap_ptes(a, b).unwrap();
        assert_eq!(pt.pte(a).unwrap().frame(), FrameId(20));
        assert_eq!(pt.pte(b).unwrap().frame(), FrameId(10));
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn swap_requires_both_present() {
        let mut pt = PageTable::new();
        pt.map(va(0x1000), Pte::map(FrameId(1), PteFlags::WRITABLE))
            .unwrap();
        assert!(pt.swap_ptes(va(0x1000), va(0x2000)).is_err());
        // Failed swap must not corrupt the first page's mapping.
        assert_eq!(pt.pte(va(0x1000)).unwrap().frame(), FrameId(1));
    }

    #[test]
    fn raw_rw_tracks_mapped_count() {
        let mut pt = PageTable::new();
        let a = va(0x3000);
        pt.map(a, Pte::map(FrameId(5), PteFlags::WRITABLE)).unwrap();
        pt.write_pte_raw(a, Pte::NONE.raw()).unwrap();
        assert_eq!(pt.mapped_pages(), 0);
        pt.write_pte_raw(a, Pte::map(FrameId(6), PteFlags::WRITABLE).raw())
            .unwrap();
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn pmd_cache_hits_within_2mib_run() {
        let mut c = PmdCache::new();
        let base = va(0x4000_0000);
        assert_eq!(c.walk_levels(base), WALK_LEVELS_FULL);
        for i in 1..512 {
            assert_eq!(c.walk_levels(base.add_pages(i)), WALK_LEVELS_CACHED);
        }
        // Page 512 is in the next PTE table.
        assert_eq!(c.walk_levels(base.add_pages(512)), WALK_LEVELS_FULL);
        let (h, m) = c.stats();
        assert_eq!((h, m), (511, 2));
    }

    #[test]
    fn pmd_cache_alternating_tables_always_misses() {
        // Swapping between two ranges in different PTE tables defeats a
        // single-slot cache — matching kernel behaviour where src/dst
        // alternate (the kernel caches per-operand; our kernel layer uses
        // one PmdCache per operand for exactly this reason).
        let mut c = PmdCache::new();
        let a = va(0x4000_0000);
        let b = va(0x8000_0000);
        for i in 0..4 {
            assert_eq!(c.walk_levels(a.add_pages(i)), WALK_LEVELS_FULL);
            assert_eq!(c.walk_levels(b.add_pages(i)), WALK_LEVELS_FULL);
        }
    }
}
