//! Shared frame budget across tenants: quotas, GC headroom, pressure.
//!
//! A multi-JVM fleet shares one machine's DRAM. Before this module, every
//! tenant's [`crate::FrameAllocator`] drew from a private pool sized to its
//! own heap, so fleet-level memory pressure was unrepresentable: a tenant
//! either fit or died with [`VmError::OutOfFrames`]. The [`FramePool`] is
//! the fleet-level budget overlay:
//!
//! * **Per-tenant quotas.** Each tenant registers for a fixed quota of
//!   frames. Charges beyond the quota are *denied with a typed error*
//!   ([`VmError::QuotaExceeded`]), never absorbed by another tenant's
//!   share — the isolation half of the robustness story.
//! * **GC emergency headroom.** A slice of each quota is reserved for
//!   [`AllocContext::Gc`] charges only. A mutator allocation storm can
//!   drive the tenant to its mutator ceiling, but the collector always has
//!   frames left to run the cycle that relieves the pressure.
//! * **Typed pressure signal.** [`FrameLease::pressure`] classifies the
//!   tenant's occupancy of its mutator budget into
//!   [`Pressure::Nominal`]/[`Pressure::Elevated`]/[`Pressure::Critical`]/
//!   [`Pressure::Exhausted`]; the core crate's escalation ladder turns the
//!   rising edge into early GCs and degraded modes before OOM.
//! * **Ownership map.** Every charged frame is recorded against its
//!   tenant in a global frame namespace (each tenant's local frame ids are
//!   offset by a per-tenant base). Charging an owned frame, or releasing
//!   someone else's, is a typed error — the frame-leak oracle audits the
//!   map after a fleet run: no frame owned by two tenants, and the pool's
//!   in-use count must equal the survivors' footprint exactly.
//!
//! Determinism: every admission decision depends only on the charging
//! tenant's own counters, which are driven by that tenant's (single-
//! threaded) simulation. Host-parallel tenants contend only on the mutex,
//! never on the *outcome*, so fleet results are bit-identical across
//! `SVAGC_HOST_THREADS` settings.

use crate::addr::FrameId;
use crate::error::VmError;
use std::sync::{Arc, Mutex};

/// Identifier of a fleet tenant (one simulated JVM; drivers use the ASID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u16);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// What a frame allocation is for — the typed attribution the pressure
/// signal and the headroom policy act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocContext {
    /// Heap region mapping (construction, on-demand commit of the shared
    /// space).
    #[default]
    Heap,
    /// TLAB / eden commit on behalf of a mutator thread.
    Tlab,
    /// GC-internal allocation (side buffers, eden for evacuation). May dip
    /// into the reserved emergency headroom.
    Gc,
}

impl AllocContext {
    /// Stable label (errors, stats, trace args).
    pub fn name(&self) -> &'static str {
        match self {
            AllocContext::Heap => "heap",
            AllocContext::Tlab => "tlab",
            AllocContext::Gc => "gc",
        }
    }
}

/// The tenant's position on its mutator frame budget (quota minus GC
/// headroom). Ordered: later variants are worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pressure {
    /// Below the elevated threshold; no action needed.
    Nominal,
    /// At or above [`FramePool::ELEVATED_PCT`]% of the mutator budget.
    Elevated,
    /// At or above [`FramePool::CRITICAL_PCT`]% of the mutator budget.
    Critical,
    /// The mutator budget is fully consumed: the next non-GC charge will
    /// be denied.
    Exhausted,
}

impl Pressure {
    /// Numeric severity (0 = Nominal), for stats and trace args.
    pub fn level(&self) -> u8 {
        match self {
            Pressure::Nominal => 0,
            Pressure::Elevated => 1,
            Pressure::Critical => 2,
            Pressure::Exhausted => 3,
        }
    }

    /// Stable label.
    pub fn name(&self) -> &'static str {
        match self {
            Pressure::Nominal => "nominal",
            Pressure::Elevated => "elevated",
            Pressure::Critical => "critical",
            Pressure::Exhausted => "exhausted",
        }
    }
}

/// Per-tenant accounting snapshot (stats lines, oracles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantFrameStats {
    /// The tenant's full quota in frames.
    pub quota: u32,
    /// Frames of the quota reserved for [`AllocContext::Gc`] charges.
    pub headroom: u32,
    /// Frames currently charged to the tenant and resident in DRAM.
    pub in_use: u32,
    /// Frames currently charged to the tenant but demoted to the far
    /// tier (owned, but not consuming DRAM budget).
    pub far_in_use: u32,
    /// High-water mark of simultaneously charged DRAM-resident frames.
    pub peak: u32,
    /// Charges denied over the tenant's lifetime (typed back-pressure).
    pub denials: u64,
    /// Has the tenant been quarantined (all frames force-released)?
    pub quarantined: bool,
}

struct TenantState {
    id: TenantId,
    /// Base of this tenant's slice of the global frame namespace.
    base: u32,
    quota: u32,
    headroom: u32,
    in_use: u32,
    /// Owned frames whose contents live on the far tier. They stay in the
    /// ownership map (the frame is still the tenant's — its DRAM cell is
    /// quarantined until promotion) but stop counting against the DRAM
    /// pressure signal: demotion is supposed to *relieve* pressure.
    far_in_use: u32,
    peak: u32,
    denials: u64,
    quarantined: bool,
}

struct PoolInner {
    total: u32,
    assigned: u32,
    tenants: Vec<TenantState>,
    /// Global frame namespace -> owning tenant. `None` = free.
    owner: Vec<Option<TenantId>>,
}

impl PoolInner {
    fn tenant_mut(&mut self, t: TenantId) -> Result<&mut TenantState, VmError> {
        self.tenants
            .iter_mut()
            .find(|s| s.id == t)
            .ok_or(VmError::NoSuchTenant(t.0))
    }

    fn tenant(&self, t: TenantId) -> Option<&TenantState> {
        self.tenants.iter().find(|s| s.id == t)
    }
}

/// One fleet's shared frame budget. Cheap to clone (a shared handle).
#[derive(Clone)]
pub struct FramePool {
    inner: Arc<Mutex<PoolInner>>,
}

impl std::fmt::Debug for FramePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().expect("frame pool poisoned");
        f.debug_struct("FramePool")
            .field("total", &g.total)
            .field("assigned", &g.assigned)
            .field("tenants", &g.tenants.len())
            .finish()
    }
}

impl FramePool {
    /// Mutator-budget occupancy (percent) at which pressure reads
    /// [`Pressure::Elevated`].
    pub const ELEVATED_PCT: u32 = 70;
    /// Mutator-budget occupancy (percent) at which pressure reads
    /// [`Pressure::Critical`].
    pub const CRITICAL_PCT: u32 = 85;

    /// A pool with a budget of `total` frames to divide among tenants.
    pub fn new(total: u32) -> FramePool {
        FramePool {
            inner: Arc::new(Mutex::new(PoolInner {
                total,
                assigned: 0,
                tenants: Vec::new(),
                owner: vec![None; total as usize],
            })),
        }
    }

    /// Register `tenant` for `quota` frames, `headroom` of which are
    /// reserved for GC-context charges. Fails if the id is taken, the
    /// quota oversubscribes the pool, or the headroom eats the whole
    /// quota.
    pub fn register(
        &self,
        tenant: TenantId,
        quota: u32,
        headroom: u32,
    ) -> Result<FrameLease, VmError> {
        let mut g = self.inner.lock().expect("frame pool poisoned");
        if g.tenants.iter().any(|s| s.id == tenant) {
            return Err(VmError::NoSuchTenant(tenant.0));
        }
        if quota == 0 || headroom >= quota || g.assigned + quota > g.total {
            return Err(VmError::QuotaExceeded {
                tenant: tenant.0,
                ctx: AllocContext::Heap,
            });
        }
        let base = g.assigned;
        g.assigned += quota;
        g.tenants.push(TenantState {
            id: tenant,
            base,
            quota,
            headroom,
            in_use: 0,
            far_in_use: 0,
            peak: 0,
            denials: 0,
            quarantined: false,
        });
        Ok(FrameLease {
            inner: Arc::clone(&self.inner),
            tenant,
        })
    }

    /// A fresh lease handle for an already-registered tenant. Lets a
    /// driver that received only the pool (plus its tenant id) attach to
    /// the quota the fleet registered for it up front — registration
    /// order fixes the namespace bases, so it must happen deterministically
    /// before host-parallel tenants start.
    pub fn lease(&self, tenant: TenantId) -> Result<FrameLease, VmError> {
        let g = self.inner.lock().expect("frame pool poisoned");
        if g.tenant(tenant).is_none() {
            return Err(VmError::NoSuchTenant(tenant.0));
        }
        Ok(FrameLease {
            inner: Arc::clone(&self.inner),
            tenant,
        })
    }

    /// Force-release every frame the tenant owns. `quarantine` marks the
    /// tenant dead (its lease turns inert); otherwise the registration
    /// stays live for a retry attempt. Returns how many frames came back.
    fn reclaim(&self, tenant: TenantId, quarantine: bool) -> Result<u32, VmError> {
        let mut g = self.inner.lock().expect("frame pool poisoned");
        let (base, quota) = {
            let s = g.tenant_mut(tenant)?;
            s.quarantined = quarantine;
            (s.base, s.quota)
        };
        let mut released = 0;
        for i in base..base + quota {
            if g.owner[i as usize] == Some(tenant) {
                g.owner[i as usize] = None;
                released += 1;
            }
        }
        let s = g.tenant_mut(tenant)?;
        debug_assert_eq!(
            s.in_use + s.far_in_use,
            released,
            "ownership map and counters disagree"
        );
        s.in_use = 0;
        s.far_in_use = 0;
        Ok(released)
    }

    /// Quarantine teardown: force-release every frame the tenant owns and
    /// mark it quarantined. Returns how many frames came back to the pool.
    pub fn release_tenant(&self, tenant: TenantId) -> Result<u32, VmError> {
        self.reclaim(tenant, true)
    }

    /// Retry teardown: force-release the tenant's frames but keep its
    /// registration (and namespace slice) live, so a fresh attempt can
    /// charge against the same quota. Also clears a prior quarantine.
    pub fn reset_tenant(&self, tenant: TenantId) -> Result<u32, VmError> {
        self.reclaim(tenant, false)
    }

    /// DRAM-resident frames currently charged across all tenants.
    pub fn in_use(&self) -> u32 {
        let g = self.inner.lock().expect("frame pool poisoned");
        g.tenants.iter().map(|s| s.in_use).sum()
    }

    /// Far-tier frames currently charged across all tenants. The tier's
    /// leak oracle cross-checks this against the device's occupied slots:
    /// after end-of-run promote-all, both must be zero.
    pub fn far_in_use(&self) -> u32 {
        let g = self.inner.lock().expect("frame pool poisoned");
        g.tenants.iter().map(|s| s.far_in_use).sum()
    }

    /// The pool's total budget.
    pub fn total(&self) -> u32 {
        self.inner.lock().expect("frame pool poisoned").total
    }

    /// A tenant's accounting snapshot (`None` if never registered).
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantFrameStats> {
        let g = self.inner.lock().expect("frame pool poisoned");
        g.tenant(tenant).map(|s| TenantFrameStats {
            quota: s.quota,
            headroom: s.headroom,
            in_use: s.in_use,
            far_in_use: s.far_in_use,
            peak: s.peak,
            denials: s.denials,
            quarantined: s.quarantined,
        })
    }

    /// The frame-leak oracle's audit: recompute every tenant's footprint
    /// from the ownership map and cross-check the counters. Returns the
    /// ownership-map total on success; any mismatch (a frame outside its
    /// owner's namespace slice, a counter that disagrees with the map) is
    /// reported as an error string naming the tenant.
    pub fn audit(&self) -> Result<u32, String> {
        let g = self.inner.lock().expect("frame pool poisoned");
        let mut owned_total = 0u32;
        for s in &g.tenants {
            let mut owned = 0u32;
            for (i, o) in g.owner.iter().enumerate() {
                if *o == Some(s.id) {
                    let i = i as u32;
                    if i < s.base || i >= s.base + s.quota {
                        return Err(format!(
                            "{} owns frame {} outside its namespace slice [{}, {})",
                            s.id,
                            i,
                            s.base,
                            s.base + s.quota
                        ));
                    }
                    owned += 1;
                }
            }
            if owned != s.in_use + s.far_in_use {
                return Err(format!(
                    "{}: ownership map says {} frame(s), counters say {} resident + {} far",
                    s.id, owned, s.in_use, s.far_in_use
                ));
            }
            if s.quarantined && owned != 0 {
                return Err(format!("{} is quarantined but still owns {owned} frame(s)", s.id));
            }
            owned_total += owned;
        }
        Ok(owned_total)
    }
}

/// A tenant's handle on the shared pool: attached to the tenant's
/// [`crate::FrameAllocator`], charged on every frame alloc and released on
/// every free. Cloning shares the underlying accounting.
#[derive(Clone)]
pub struct FrameLease {
    inner: Arc<Mutex<PoolInner>>,
    tenant: TenantId,
}

impl std::fmt::Debug for FrameLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameLease").field("tenant", &self.tenant).finish()
    }
}

impl FrameLease {
    /// The tenant this lease charges.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Charge one frame in context `ctx`. Denials are typed and recorded;
    /// the frame is not charged on error.
    pub fn charge(&self, ctx: AllocContext, frame: FrameId) -> Result<(), VmError> {
        let mut g = self.inner.lock().expect("frame pool poisoned");
        let tenant = self.tenant;
        let s = g.tenant_mut(tenant)?;
        if s.quarantined {
            s.denials += 1;
            return Err(VmError::QuotaExceeded { tenant: tenant.0, ctx });
        }
        let ceiling = match ctx {
            // Mutator charges stop at the mutator budget; the reserved
            // headroom stays free for the GC that will relieve pressure.
            AllocContext::Heap | AllocContext::Tlab => s.quota - s.headroom,
            AllocContext::Gc => s.quota,
        };
        if s.in_use >= ceiling {
            s.denials += 1;
            return Err(VmError::QuotaExceeded { tenant: tenant.0, ctx });
        }
        if frame.0 >= s.quota {
            return Err(VmError::FrameOutOfRange(frame));
        }
        let global = (s.base + frame.0) as usize;
        match g.owner[global] {
            Some(owner) => {
                return Err(VmError::DualOwnership {
                    frame: frame.0,
                    owner: owner.0,
                    claimant: tenant.0,
                })
            }
            None => g.owner[global] = Some(tenant),
        }
        let s = g.tenant_mut(tenant)?;
        s.in_use += 1;
        s.peak = s.peak.max(s.in_use);
        Ok(())
    }

    /// Release one charged frame back to the tenant's budget.
    pub fn release(&self, frame: FrameId) -> Result<(), VmError> {
        let mut g = self.inner.lock().expect("frame pool poisoned");
        let tenant = self.tenant;
        let s = g.tenant_mut(tenant)?;
        if s.quarantined {
            // Quarantine already force-released everything; a straggling
            // free from teardown is not an error.
            return Ok(());
        }
        if frame.0 >= s.quota {
            return Err(VmError::FrameOutOfRange(frame));
        }
        let global = (s.base + frame.0) as usize;
        match g.owner[global] {
            Some(owner) if owner == tenant => g.owner[global] = None,
            Some(owner) => {
                return Err(VmError::DualOwnership {
                    frame: frame.0,
                    owner: owner.0,
                    claimant: tenant.0,
                })
            }
            None => return Err(VmError::FrameNotAllocated(frame)),
        }
        let s = g.tenant_mut(tenant)?;
        s.in_use = s.in_use.saturating_sub(1);
        Ok(())
    }

    /// Move one charged frame's budget from DRAM to the far tier: the
    /// tenant still owns the frame (ownership map untouched) but it stops
    /// counting against the DRAM pressure signal. The frame must be
    /// charged to this tenant.
    pub fn demote_charge(&self, frame: FrameId) -> Result<(), VmError> {
        let mut g = self.inner.lock().expect("frame pool poisoned");
        let tenant = self.tenant;
        let s = g.tenant_mut(tenant)?;
        if s.quarantined {
            return Ok(());
        }
        if frame.0 >= s.quota {
            return Err(VmError::FrameOutOfRange(frame));
        }
        let global = (s.base + frame.0) as usize;
        match g.owner[global] {
            Some(owner) if owner == tenant => {}
            Some(owner) => {
                return Err(VmError::DualOwnership {
                    frame: frame.0,
                    owner: owner.0,
                    claimant: tenant.0,
                })
            }
            None => return Err(VmError::FrameNotAllocated(frame)),
        }
        let s = g.tenant_mut(tenant)?;
        s.in_use = s.in_use.saturating_sub(1);
        s.far_in_use += 1;
        Ok(())
    }

    /// Move one far-tier frame's budget back to DRAM (promotion). Never
    /// denied: the frame was already owned, so the tenant's total charge
    /// is unchanged — promotion is correctness-driven, like a GC charge.
    pub fn promote_charge(&self, frame: FrameId) -> Result<(), VmError> {
        let mut g = self.inner.lock().expect("frame pool poisoned");
        let tenant = self.tenant;
        let s = g.tenant_mut(tenant)?;
        if s.quarantined {
            return Ok(());
        }
        if frame.0 >= s.quota {
            return Err(VmError::FrameOutOfRange(frame));
        }
        let global = (s.base + frame.0) as usize;
        match g.owner[global] {
            Some(owner) if owner == tenant => {}
            Some(owner) => {
                return Err(VmError::DualOwnership {
                    frame: frame.0,
                    owner: owner.0,
                    claimant: tenant.0,
                })
            }
            None => return Err(VmError::FrameNotAllocated(frame)),
        }
        let s = g.tenant_mut(tenant)?;
        s.far_in_use = s.far_in_use.saturating_sub(1);
        s.in_use += 1;
        s.peak = s.peak.max(s.in_use);
        Ok(())
    }

    /// The tenant's current pressure on its mutator budget.
    pub fn pressure(&self) -> Pressure {
        let g = self.inner.lock().expect("frame pool poisoned");
        match g.tenant(self.tenant) {
            None => Pressure::Nominal,
            Some(s) => {
                let avail = (s.quota - s.headroom).max(1);
                let pct = (s.in_use as u64 * 100 / avail as u64) as u32;
                if s.in_use >= avail {
                    Pressure::Exhausted
                } else if pct >= FramePool::CRITICAL_PCT {
                    Pressure::Critical
                } else if pct >= FramePool::ELEVATED_PCT {
                    Pressure::Elevated
                } else {
                    Pressure::Nominal
                }
            }
        }
    }

    /// This tenant's accounting snapshot.
    pub fn stats(&self) -> TenantFrameStats {
        let g = self.inner.lock().expect("frame pool poisoned");
        let s = g.tenant(self.tenant).expect("lease without tenant");
        TenantFrameStats {
            quota: s.quota,
            headroom: s.headroom,
            in_use: s.in_use,
            far_in_use: s.far_in_use,
            peak: s.peak,
            denials: s.denials,
            quarantined: s.quarantined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_are_disjoint_and_enforced() {
        let pool = FramePool::new(100);
        let a = pool.register(TenantId(1), 60, 10).unwrap();
        let b = pool.register(TenantId(2), 40, 5).unwrap();
        // Tenant 1 mutator budget = 50.
        for i in 0..50 {
            a.charge(AllocContext::Heap, FrameId(i)).unwrap();
        }
        assert_eq!(a.pressure(), Pressure::Exhausted);
        assert!(matches!(
            a.charge(AllocContext::Tlab, FrameId(50)),
            Err(VmError::QuotaExceeded { tenant: 1, .. })
        ));
        // GC context dips into the headroom.
        for i in 50..60 {
            a.charge(AllocContext::Gc, FrameId(i)).unwrap();
        }
        assert!(matches!(
            a.charge(AllocContext::Gc, FrameId(60)),
            Err(VmError::QuotaExceeded { .. })
        ));
        // Tenant 2 is untouched by tenant 1's exhaustion.
        b.charge(AllocContext::Heap, FrameId(0)).unwrap();
        assert_eq!(b.pressure(), Pressure::Nominal);
        assert_eq!(pool.in_use(), 61);
        assert_eq!(pool.audit().unwrap(), 61);
    }

    #[test]
    fn pressure_ladder_tracks_occupancy() {
        let pool = FramePool::new(100);
        let l = pool.register(TenantId(1), 100, 0).unwrap();
        let mut i = 0;
        let mut charge_to = |l: &FrameLease, n: u32| {
            while i < n {
                l.charge(AllocContext::Heap, FrameId(i)).unwrap();
                i += 1;
            }
        };
        charge_to(&l, 69);
        assert_eq!(l.pressure(), Pressure::Nominal);
        charge_to(&l, 70);
        assert_eq!(l.pressure(), Pressure::Elevated);
        charge_to(&l, 85);
        assert_eq!(l.pressure(), Pressure::Critical);
        charge_to(&l, 100);
        assert_eq!(l.pressure(), Pressure::Exhausted);
    }

    #[test]
    fn dual_ownership_and_foreign_release_are_typed_errors() {
        let pool = FramePool::new(10);
        let a = pool.register(TenantId(1), 5, 0).unwrap();
        a.charge(AllocContext::Heap, FrameId(3)).unwrap();
        assert!(matches!(
            a.charge(AllocContext::Heap, FrameId(3)),
            Err(VmError::DualOwnership { frame: 3, owner: 1, claimant: 1 })
        ));
        assert!(matches!(
            a.release(FrameId(4)),
            Err(VmError::FrameNotAllocated(FrameId(4)))
        ));
        a.release(FrameId(3)).unwrap();
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn quarantine_returns_every_frame() {
        let pool = FramePool::new(20);
        let a = pool.register(TenantId(1), 10, 2).unwrap();
        let b = pool.register(TenantId(2), 10, 2).unwrap();
        for i in 0..6 {
            a.charge(AllocContext::Heap, FrameId(i)).unwrap();
        }
        b.charge(AllocContext::Heap, FrameId(0)).unwrap();
        assert_eq!(pool.release_tenant(TenantId(1)).unwrap(), 6);
        assert_eq!(pool.in_use(), 1, "only the survivor's footprint remains");
        assert_eq!(pool.audit().unwrap(), 1);
        // The quarantined tenant can no longer charge; stray releases are
        // tolerated (teardown races with accounting).
        assert!(a.charge(AllocContext::Gc, FrameId(0)).is_err());
        assert!(a.release(FrameId(0)).is_ok());
        let st = pool.tenant_stats(TenantId(1)).unwrap();
        assert!(st.quarantined && st.in_use == 0 && st.denials >= 1);
    }

    #[test]
    fn reset_keeps_registration_live_for_retry() {
        let pool = FramePool::new(20);
        let a = pool.register(TenantId(1), 10, 2).unwrap();
        for i in 0..5 {
            a.charge(AllocContext::Heap, FrameId(i)).unwrap();
        }
        assert_eq!(pool.reset_tenant(TenantId(1)).unwrap(), 5);
        assert_eq!(pool.in_use(), 0);
        // A fresh lease for the same registration charges again.
        let a2 = pool.lease(TenantId(1)).unwrap();
        a2.charge(AllocContext::Heap, FrameId(0)).unwrap();
        assert_eq!(pool.audit().unwrap(), 1);
        assert!(pool.lease(TenantId(9)).is_err(), "unregistered tenant");
        // Quarantine then reset re-arms the tenant.
        pool.release_tenant(TenantId(1)).unwrap();
        assert!(a2.charge(AllocContext::Heap, FrameId(1)).is_err());
        pool.reset_tenant(TenantId(1)).unwrap();
        a2.charge(AllocContext::Heap, FrameId(1)).unwrap();
    }

    #[test]
    fn demote_moves_the_charge_off_the_pressure_signal() {
        let pool = FramePool::new(20);
        let l = pool.register(TenantId(1), 10, 0).unwrap();
        for i in 0..8 {
            l.charge(AllocContext::Heap, FrameId(i)).unwrap();
        }
        assert_eq!(l.pressure(), Pressure::Elevated);
        // Demoting four pages relieves DRAM pressure without releasing
        // ownership (the audit still sees 8 owned frames).
        for i in 0..4 {
            l.demote_charge(FrameId(i)).unwrap();
        }
        assert_eq!(l.pressure(), Pressure::Nominal);
        assert_eq!(pool.in_use(), 4);
        assert_eq!(pool.far_in_use(), 4);
        assert_eq!(pool.audit().unwrap(), 8);
        // Promotion moves the budget back; totals stay conserved.
        l.promote_charge(FrameId(0)).unwrap();
        assert_eq!((pool.in_use(), pool.far_in_use()), (5, 3));
        // Charges on unowned frames are typed errors.
        assert!(matches!(
            l.demote_charge(FrameId(9)),
            Err(VmError::FrameNotAllocated(FrameId(9)))
        ));
        // Quarantine reclaims DRAM and far charges alike.
        pool.release_tenant(TenantId(1)).unwrap();
        assert_eq!((pool.in_use(), pool.far_in_use()), (0, 0));
        assert_eq!(pool.audit().unwrap(), 0);
    }

    #[test]
    fn registration_rejects_oversubscription() {
        let pool = FramePool::new(50);
        pool.register(TenantId(1), 40, 4).unwrap();
        assert!(pool.register(TenantId(2), 20, 2).is_err(), "40+20 > 50");
        assert!(pool.register(TenantId(1), 5, 0).is_err(), "duplicate id");
        assert!(pool.register(TenantId(3), 5, 5).is_err(), "headroom eats quota");
        pool.register(TenantId(4), 10, 0).unwrap();
    }
}
