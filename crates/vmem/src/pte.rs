//! Page-table entries.
//!
//! A [`Pte`] packs a frame number and permission/status bits into one `u64`,
//! mirroring the x86-64 hardware format closely enough that "swap two PTEs"
//! means exactly what it means in the paper: exchange two 8-byte words.

use crate::addr::FrameId;
use std::fmt;

/// Bit flags of a PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteFlags(u64);

impl PteFlags {
    /// Entry maps a frame.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Writable mapping.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// Accessed (set by simulated MMU on translation).
    pub const ACCESSED: PteFlags = PteFlags(1 << 5);
    /// Dirty (set by simulated MMU on write).
    pub const DIRTY: PteFlags = PteFlags(1 << 6);

    /// Union of flags.
    #[inline]
    pub const fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Raw bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }
}

/// One page-table entry: frame number in bits 12.., flags in bits 0..12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(u64);

impl Pte {
    /// The not-present entry.
    pub const NONE: Pte = Pte(0);

    /// A present entry mapping `frame` with `flags` (PRESENT is implied).
    #[inline]
    pub fn map(frame: FrameId, flags: PteFlags) -> Pte {
        Pte(((frame.0 as u64) << 12) | flags.0 | PteFlags::PRESENT.0)
    }

    /// Is the entry present?
    #[inline]
    pub fn present(self) -> bool {
        self.0 & PteFlags::PRESENT.0 != 0
    }

    /// Mapped frame (meaningless if not present).
    #[inline]
    pub fn frame(self) -> FrameId {
        FrameId((self.0 >> 12) as u32)
    }

    /// Is the mapping writable?
    #[inline]
    pub fn writable(self) -> bool {
        self.0 & PteFlags::WRITABLE.0 != 0
    }

    /// Set a flag.
    #[inline]
    pub fn set(&mut self, flag: PteFlags) {
        self.0 |= flag.0;
    }

    /// Test a flag.
    #[inline]
    pub fn has(self, flag: PteFlags) -> bool {
        self.0 & flag.0 == flag.0
    }

    /// The raw 64-bit word (what SwapVA exchanges).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Build from a raw word.
    #[inline]
    pub fn from_raw(raw: u64) -> Pte {
        Pte(raw)
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.present() {
            write!(
                f,
                "pte[{} {}{}{}p]",
                self.frame(),
                if self.writable() { "w" } else { "-" },
                if self.has(PteFlags::ACCESSED) { "a" } else { "-" },
                if self.has(PteFlags::DIRTY) { "d" } else { "-" }
            )
        } else {
            write!(f, "pte[none]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_inspect() {
        let pte = Pte::map(FrameId(7), PteFlags::WRITABLE);
        assert!(pte.present());
        assert!(pte.writable());
        assert_eq!(pte.frame(), FrameId(7));
        assert!(!pte.has(PteFlags::DIRTY));
    }

    #[test]
    fn none_is_absent() {
        assert!(!Pte::NONE.present());
        assert_eq!(Pte::NONE.raw(), 0);
    }

    #[test]
    fn raw_roundtrip_is_swap_safe() {
        // SwapVA exchanges raw words; flags and frame must survive.
        let a = Pte::map(FrameId(1), PteFlags::WRITABLE.union(PteFlags::DIRTY));
        let b = Pte::from_raw(a.raw());
        assert_eq!(a, b);
        assert!(b.has(PteFlags::DIRTY));
    }

    #[test]
    fn flag_setting() {
        let mut pte = Pte::map(FrameId(3), PteFlags::WRITABLE);
        pte.set(PteFlags::ACCESSED);
        assert!(pte.has(PteFlags::ACCESSED));
        pte.set(PteFlags::DIRTY);
        assert!(pte.has(PteFlags::DIRTY.union(PteFlags::ACCESSED)));
    }
}
