//! Address spaces and the machine-wide memory bundle.
//!
//! An [`AddressSpace`] is one simulated process (one "JVM"): an ASID, a
//! page table, and a bump cursor for carving fresh virtual ranges. The
//! [`Vmem`] bundle owns the shared physical pool and allocator that all
//! spaces draw frames from.
//!
//! Raw data access here is *uncosted* — the kernel crate wraps these calls
//! with TLB/cache/cycle charging. Keeping the functional layer cost-free
//! lets tests verify pure memory semantics (e.g. "contents survive a PTE
//! swap") without a machine model.

use crate::addr::{Asid, PhysAddr, VirtAddr, PAGE_SIZE};
use crate::error::VmError;
use crate::frame::{FrameAllocator, PhysMem};
use crate::pagetable::PageTable;
use crate::pte::{Pte, PteFlags};

/// Base of the simulated user heap mappings (arbitrary canonical address).
pub const USER_BASE: u64 = 0xA0_0000_0000;

/// One simulated process's address space.
#[derive(Debug)]
pub struct AddressSpace {
    asid: Asid,
    pt: PageTable,
    next_va: VirtAddr,
}

impl AddressSpace {
    /// Fresh, empty space.
    pub fn new(asid: Asid) -> AddressSpace {
        AddressSpace {
            asid,
            pt: PageTable::new(),
            next_va: VirtAddr(USER_BASE),
        }
    }

    /// This space's ASID.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The page table (read access).
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// The page table (mutation — used by the kernel's SwapVA).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.pt
    }

    /// Reserve a fresh, unmapped, page-aligned virtual range of `pages`
    /// pages (no frames attached yet).
    pub fn reserve_pages(&mut self, pages: u64) -> VirtAddr {
        let base = self.next_va;
        self.next_va = self.next_va.add_pages(pages);
        base
    }

    /// Translate, or error if unmapped.
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, VmError> {
        self.pt.translate(va)
    }
}

/// The shared physical memory and everything needed to wire spaces to it.
#[derive(Debug)]
pub struct Vmem {
    /// The frame pool contents.
    pub phys: PhysMem,
    /// The frame allocator.
    pub frames: FrameAllocator,
}

impl Vmem {
    /// A machine with `frames` 4-KiB frames of physical memory.
    pub fn new(frames: u32) -> Vmem {
        Vmem {
            phys: PhysMem::new(frames),
            frames: FrameAllocator::new(frames),
        }
    }

    /// A machine with at least `bytes` of physical memory.
    pub fn with_bytes(bytes: u64) -> Vmem {
        Vmem::new(bytes.div_ceil(PAGE_SIZE) as u32)
    }

    /// Map `pages` fresh zeroed frames at `va` (must be page-aligned and
    /// unmapped) in `space`.
    pub fn map_pages(
        &mut self,
        space: &mut AddressSpace,
        va: VirtAddr,
        pages: u64,
    ) -> Result<(), VmError> {
        if !va.is_page_aligned() {
            return Err(VmError::BadSwapRange { a: va, b: va, pages });
        }
        let rollback = |vm: &mut Vmem, space: &mut AddressSpace, upto: u64| {
            for j in 0..upto {
                let f = space
                    .pt
                    .unmap(va.add_pages(j))
                    .expect("rollback invariant: pages 0..upto were mapped by this call");
                vm.frames
                    .free(f.frame())
                    .expect("rollback invariant: frame was allocated by this call");
            }
        };
        for i in 0..pages {
            let page_va = va.add_pages(i);
            let frame = match self.frames.alloc() {
                Ok(f) => f,
                Err(e) => {
                    rollback(self, space, i);
                    return Err(e);
                }
            };
            self.phys.zero_frame(frame)?;
            if let Err(e) = space.pt.map(page_va, Pte::map(frame, PteFlags::WRITABLE)) {
                self.frames
                    .free(frame)
                    .expect("frame was allocated just above");
                rollback(self, space, i);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Reserve + map a fresh region of `pages` pages; returns its base.
    pub fn alloc_region(
        &mut self,
        space: &mut AddressSpace,
        pages: u64,
    ) -> Result<VirtAddr, VmError> {
        let va = space.reserve_pages(pages);
        self.map_pages(space, va, pages)?;
        Ok(va)
    }

    /// Unmap `pages` pages at `va`, returning their frames to the pool.
    pub fn unmap_pages(
        &mut self,
        space: &mut AddressSpace,
        va: VirtAddr,
        pages: u64,
    ) -> Result<(), VmError> {
        for i in 0..pages {
            let pte = space.pt.unmap(va.add_pages(i))?;
            self.frames.free(pte.frame())?;
        }
        Ok(())
    }

    /// Read one word through `space`'s translation.
    #[inline]
    pub fn read_u64(&self, space: &AddressSpace, va: VirtAddr) -> Result<u64, VmError> {
        debug_assert!(va.page_offset() <= PAGE_SIZE - 8, "word straddles a page");
        self.phys.read_u64(space.translate(va)?)
    }

    /// Write one word through `space`'s translation.
    #[inline]
    pub fn write_u64(
        &mut self,
        space: &AddressSpace,
        va: VirtAddr,
        val: u64,
    ) -> Result<(), VmError> {
        debug_assert!(va.page_offset() <= PAGE_SIZE - 8, "word straddles a page");
        self.phys.write_u64(space.translate(va)?, val)
    }

    /// Read `buf.len()` bytes starting at `va`, crossing pages as needed.
    pub fn read_bytes(
        &self,
        space: &AddressSpace,
        mut va: VirtAddr,
        mut buf: &mut [u8],
    ) -> Result<(), VmError> {
        while !buf.is_empty() {
            let in_page = (PAGE_SIZE - va.page_offset()).min(buf.len() as u64) as usize;
            let (chunk, rest) = buf.split_at_mut(in_page);
            self.phys.read_bytes(space.translate(va)?, chunk)?;
            buf = rest;
            va = va + in_page as u64;
        }
        Ok(())
    }

    /// Append `len` bytes starting at `va` to `out`, crossing pages as
    /// needed. Equivalent to `read_bytes` into a fresh buffer appended to
    /// `out`, but skips the intermediate allocation and zero-fill — the
    /// undo journal snapshots pre-images through this on every journaled
    /// memmove, so the saving is per moved object. On a translation error
    /// `out` may have grown by a prefix of the range.
    pub fn read_bytes_into(
        &self,
        space: &AddressSpace,
        mut va: VirtAddr,
        mut len: u64,
        out: &mut Vec<u8>,
    ) -> Result<(), VmError> {
        out.reserve(len as usize);
        while len > 0 {
            let in_page = (PAGE_SIZE - va.page_offset()).min(len);
            self.phys.read_append(space.translate(va)?, in_page, out)?;
            va = va + in_page;
            len -= in_page;
        }
        Ok(())
    }

    /// Write `buf` starting at `va`, crossing pages as needed.
    pub fn write_bytes(
        &mut self,
        space: &AddressSpace,
        mut va: VirtAddr,
        mut buf: &[u8],
    ) -> Result<(), VmError> {
        while !buf.is_empty() {
            let in_page = (PAGE_SIZE - va.page_offset()).min(buf.len() as u64) as usize;
            let (chunk, rest) = buf.split_at(in_page);
            self.phys.write_bytes(space.translate(va)?, chunk)?;
            buf = rest;
            va = va + in_page as u64;
        }
        Ok(())
    }

    /// Move `len` bytes from `src` to `dst` with memmove semantics
    /// (overlap-safe), copying page-bounded chunks frame-to-frame.
    ///
    /// Equivalent to `read_bytes` into a bounce buffer followed by
    /// `write_bytes`, but without materialising the buffer: chunks are
    /// copied low-to-high when `dst < src` and high-to-low when
    /// `dst > src`, so no chunk's source bytes are overwritten before
    /// they are read. A chunk never crosses a page boundary on either
    /// side, so intra-chunk virtual overlap implies both sides sit in the
    /// same page (same frame) and [`PhysMem::copy`]'s `copy_within`
    /// handles it. On a translation error the move may have been partially
    /// applied (callers move between mapped heap ranges).
    pub fn move_bytes(
        &mut self,
        space: &AddressSpace,
        src: VirtAddr,
        dst: VirtAddr,
        len: u64,
    ) -> Result<(), VmError> {
        if len == 0 || src == dst {
            // Still validate the endpoints like the buffered path did.
            if len > 0 {
                space.translate(src)?;
            }
            return Ok(());
        }
        let chunk_at = |at: u64, remaining: u64| -> u64 {
            let s_room = PAGE_SIZE - (src + at).page_offset();
            let d_room = PAGE_SIZE - (dst + at).page_offset();
            s_room.min(d_room).min(remaining)
        };
        if dst < src {
            let mut done = 0;
            while done < len {
                let step = chunk_at(done, len - done);
                let spa = space.translate(src + done)?;
                let dpa = space.translate(dst + done)?;
                self.phys.copy(spa, dpa, step)?;
                done += step;
            }
        } else {
            let mut left = len;
            while left > 0 {
                // Largest chunk ending at offset `left`.
                let s_off = (src + (left - 1)).page_offset() + 1;
                let d_off = (dst + (left - 1)).page_offset() + 1;
                let step = s_off.min(d_off).min(left);
                left -= step;
                let spa = space.translate(src + left)?;
                let dpa = space.translate(dst + left)?;
                self.phys.copy(spa, dpa, step)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vmem, AddressSpace) {
        (Vmem::new(64), AddressSpace::new(Asid(1)))
    }

    #[test]
    fn region_alloc_maps_zeroed_pages() {
        let (mut vm, mut sp) = setup();
        let va = vm.alloc_region(&mut sp, 4).unwrap();
        assert!(va.is_page_aligned());
        assert_eq!(vm.read_u64(&sp, va).unwrap(), 0);
        assert_eq!(vm.frames.in_use(), 4);
    }

    #[test]
    fn word_rw_roundtrip() {
        let (mut vm, mut sp) = setup();
        let va = vm.alloc_region(&mut sp, 2).unwrap();
        vm.write_u64(&sp, va + 8, 42).unwrap();
        assert_eq!(vm.read_u64(&sp, va + 8).unwrap(), 42);
    }

    #[test]
    fn byte_rw_crosses_pages() {
        let (mut vm, mut sp) = setup();
        let va = vm.alloc_region(&mut sp, 2).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        // Start 100 bytes before the page boundary.
        let start = va + (PAGE_SIZE - 100);
        vm.write_bytes(&sp, start, &data).unwrap();
        let mut back = vec![0u8; 256];
        vm.read_bytes(&sp, start, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unmap_returns_frames() {
        let (mut vm, mut sp) = setup();
        let va = vm.alloc_region(&mut sp, 8).unwrap();
        vm.unmap_pages(&mut sp, va, 8).unwrap();
        assert_eq!(vm.frames.in_use(), 0);
        assert!(vm.read_u64(&sp, va).is_err());
    }

    #[test]
    fn map_rolls_back_on_out_of_frames() {
        let mut vm = Vmem::new(2);
        let mut sp = AddressSpace::new(Asid(1));
        let va = sp.reserve_pages(4);
        assert!(vm.map_pages(&mut sp, va, 4).is_err());
        assert_eq!(vm.frames.in_use(), 0, "partial mapping must roll back");
    }

    #[test]
    fn spaces_are_isolated() {
        let mut vm = Vmem::new(8);
        let mut a = AddressSpace::new(Asid(1));
        let mut b = AddressSpace::new(Asid(2));
        let va_a = vm.alloc_region(&mut a, 1).unwrap();
        let va_b = vm.alloc_region(&mut b, 1).unwrap();
        vm.write_u64(&a, va_a, 111).unwrap();
        vm.write_u64(&b, va_b, 222).unwrap();
        assert_eq!(vm.read_u64(&a, va_a).unwrap(), 111);
        assert_eq!(vm.read_u64(&b, va_b).unwrap(), 222);
    }

    #[test]
    fn data_survives_pte_swap() {
        // The core zero-copy property: swap the PTEs of two pages and their
        // *contents* (as seen through virtual addresses) exchange, no bytes
        // moved.
        let (mut vm, mut sp) = setup();
        let a = vm.alloc_region(&mut sp, 1).unwrap();
        let b = vm.alloc_region(&mut sp, 1).unwrap();
        vm.write_u64(&sp, a, 0xAAAA).unwrap();
        vm.write_u64(&sp, b, 0xBBBB).unwrap();
        sp.page_table_mut().swap_ptes(a, b).unwrap();
        assert_eq!(vm.read_u64(&sp, a).unwrap(), 0xBBBB);
        assert_eq!(vm.read_u64(&sp, b).unwrap(), 0xAAAA);
    }
}
