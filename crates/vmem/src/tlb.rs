//! Per-core two-level TLB (L1 DTLB + unified STLB).
//!
//! This is the *functional* TLB whose flush traffic SwapVA must manage:
//! every PTE exchange leaves stale entries on every core that has touched
//! the page, which is exactly the shootdown problem of §IV. The kernel
//! layer decides *when* to flush (per-call global vs pinned/local); this
//! module implements the state machine and counts lookups/misses for the
//! Table III DTLB columns.

use crate::addr::{Asid, FrameId};

/// Which level serviced a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbHit {
    /// L1 DTLB hit.
    L1,
    /// Second-level TLB hit (promoted to L1).
    Stlb,
    /// Miss — page walk required.
    Miss,
}

/// TLB geometry.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// L1 DTLB entry count.
    pub l1_entries: usize,
    /// L1 DTLB associativity.
    pub l1_ways: usize,
    /// STLB entry count.
    pub stlb_entries: usize,
    /// STLB associativity.
    pub stlb_ways: usize,
}

impl TlbConfig {
    /// Skylake-like: 64-entry 4-way L1 DTLB, 1536-entry 12-way STLB.
    pub fn skylake() -> TlbConfig {
        TlbConfig {
            l1_entries: 64,
            l1_ways: 4,
            stlb_entries: 1536,
            stlb_ways: 12,
        }
    }
}

/// One set-associative TLB level, stored structure-of-arrays so the
/// per-access hot path ([`TlbArray::lookup`]) compares exactly one `u64`
/// tag per way instead of three separately-loaded fields. An entry's tag
/// packs `(vpn << 16) | asid` (asids are `u16`); validity lives in the
/// LRU stamp (`0` = invalid — the tick pre-increments, so every real
/// stamp is ≥ 1). The simulated state machine is bit-identical to the
/// naive array-of-structs it replaced: hits, misses, LRU victims, and
/// flush effects all agree, which the perf gate pins via `sim_digest`.
#[derive(Debug)]
struct TlbArray {
    sets: usize,
    ways: usize,
    /// `(vpn << 16) | asid` per entry; meaningless while `stamps[i] == 0`.
    tags: Vec<u64>,
    /// LRU stamp per entry; `0` marks the entry invalid.
    stamps: Vec<u64>,
    frames: Vec<FrameId>,
    tick: u64,
}

#[inline]
fn tag_of(asid: Asid, vpn: u64) -> u64 {
    (vpn << 16) | asid.0 as u64
}

impl TlbArray {
    fn new(entries: usize, ways: usize) -> TlbArray {
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "TLB set count must be 2^k");
        TlbArray {
            sets,
            ways,
            tags: vec![0; entries],
            stamps: vec![0; entries],
            frames: vec![FrameId::default(); entries],
            tick: 0,
        }
    }

    fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets - 1)
    }

    #[inline]
    fn lookup(&mut self, asid: Asid, vpn: u64) -> Option<FrameId> {
        self.tick += 1;
        let tag = tag_of(asid, vpn);
        let base = self.set_of(vpn) * self.ways;
        for w in base..base + self.ways {
            if self.tags[w] == tag && self.stamps[w] != 0 {
                self.stamps[w] = self.tick;
                return Some(self.frames[w]);
            }
        }
        None
    }

    fn insert(&mut self, asid: Asid, vpn: u64, frame: FrameId) {
        self.tick += 1;
        let base = self.set_of(vpn) * self.ways;
        // Stamps order exactly as the old `valid ? stamp + 1 : 0` key:
        // invalid (0) sorts before every valid stamp (>= 1), ties among
        // invalid ways break to the lowest index.
        let victim = (base..base + self.ways)
            .min_by_key(|&w| self.stamps[w])
            .expect("TLB invariant: associativity (ways) is at least 1");
        self.tags[victim] = tag_of(asid, vpn);
        self.stamps[victim] = self.tick;
        self.frames[victim] = frame;
    }

    fn flush_all(&mut self) {
        self.stamps.fill(0);
    }

    fn flush_asid(&mut self, asid: Asid) {
        for (s, &t) in self.stamps.iter_mut().zip(self.tags.iter()) {
            if t & 0xFFFF == asid.0 as u64 {
                *s = 0;
            }
        }
    }

    fn flush_page(&mut self, asid: Asid, vpn: u64) {
        let tag = tag_of(asid, vpn);
        let base = self.set_of(vpn) * self.ways;
        for w in base..base + self.ways {
            if self.tags[w] == tag {
                self.stamps[w] = 0;
            }
        }
    }

    fn valid_count(&self) -> usize {
        self.stamps.iter().filter(|&&s| s != 0).count()
    }

    fn holds_asid(&self, asid: Asid) -> bool {
        self.stamps
            .iter()
            .zip(self.tags.iter())
            .any(|(&s, &t)| s != 0 && t & 0xFFFF == asid.0 as u64)
    }
}

/// One core's TLB hierarchy with lookup/miss statistics.
#[derive(Debug)]
pub struct Tlb {
    l1: TlbArray,
    stlb: TlbArray,
    lookups: u64,
    l1_misses: u64,
    misses: u64,
}

impl Tlb {
    /// Build from a geometry.
    pub fn new(cfg: TlbConfig) -> Tlb {
        Tlb {
            l1: TlbArray::new(cfg.l1_entries, cfg.l1_ways),
            stlb: TlbArray::new(cfg.stlb_entries, cfg.stlb_ways),
            lookups: 0,
            l1_misses: 0,
            misses: 0,
        }
    }

    /// Look up `(asid, vpn)`. Hits in the STLB are promoted to L1. Misses
    /// must be followed by [`Tlb::insert`] after the page walk.
    pub fn lookup(&mut self, asid: Asid, vpn: u64) -> (TlbHit, Option<FrameId>) {
        self.lookups += 1;
        if let Some(f) = self.l1.lookup(asid, vpn) {
            return (TlbHit::L1, Some(f));
        }
        self.l1_misses += 1;
        if let Some(f) = self.stlb.lookup(asid, vpn) {
            self.l1.insert(asid, vpn, f);
            return (TlbHit::Stlb, Some(f));
        }
        self.misses += 1;
        (TlbHit::Miss, None)
    }

    /// Fill both levels after a page walk.
    pub fn insert(&mut self, asid: Asid, vpn: u64, frame: FrameId) {
        self.stlb.insert(asid, vpn, frame);
        self.l1.insert(asid, vpn, frame);
    }

    /// Drop every entry (global flush, e.g. CR3 write without PCID).
    pub fn flush_all(&mut self) {
        self.l1.flush_all();
        self.stlb.flush_all();
    }

    /// Drop entries of one address space (`flush_tlb_local(pid)`).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.l1.flush_asid(asid);
        self.stlb.flush_asid(asid);
    }

    /// Drop one page's entry (`invlpg` / `flush_tlb_page`).
    pub fn flush_page(&mut self, asid: Asid, vpn: u64) {
        self.l1.flush_page(asid, vpn);
        self.stlb.flush_page(asid, vpn);
    }

    /// `(lookups, full_misses)` — the Table III DTLB-miss ratio inputs.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.misses)
    }

    /// L1 DTLB misses (reached the STLB).
    pub fn l1_misses(&self) -> u64 {
        self.l1_misses
    }

    /// Reset statistics (contents untouched).
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.l1_misses = 0;
        self.misses = 0;
    }

    /// Valid entries across both levels (for tests).
    pub fn resident(&self) -> usize {
        self.l1.valid_count() + self.stlb.valid_count()
    }

    /// Does this TLB hold any entry of `asid`? (The question an
    /// access-tracking shootdown scheme answers per core.)
    pub fn holds_asid(&self, asid: Asid) -> bool {
        self.l1.holds_asid(asid) || self.stlb.holds_asid(asid)
    }
}

/// Copyable snapshot of the oracle's counters (threaded into run results
/// and the `gc.tlb.*` registry keys).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Was the oracle recording?
    pub enabled: bool,
    /// TLB hits cross-checked against the live page table.
    pub checks: u64,
    /// Hits whose cached frame disagreed with the page table — a mutator
    /// translated through a stale entry, the §IV safety violation.
    pub stale_hits: u64,
    /// Kernel flush events that violated the protocol preconditions
    /// (a local-only flush without an active pin, or without the
    /// once-per-cycle broadcast; a shootdown that left a victim unflushed).
    pub audit_violations: u64,
}

/// Runtime stale-translation oracle: the dynamic counterpart of the
/// protocol model checker (`svagc-core::protocol`).
///
/// When enabled, the kernel cross-checks every TLB *hit* against the live
/// page table (a hit whose cached frame disagrees is a stale translation —
/// exactly the hazard the shootdown protocol must prevent) and audits
/// every post-swap flush against the Algorithm 4 preconditions: a
/// `LocalOnly` flush is legal only while the compactor is pinned *and* a
/// cycle-start broadcast has been issued for that address space since the
/// pin began. Disabled (the default) it is a single branch on a bool —
/// behaviour, cycle charging, and simulated counters are bit-identical
/// with the oracle on or off; it is a pure observer.
#[derive(Debug, Clone, Default)]
pub struct TlbOracle {
    enabled: bool,
    checks: u64,
    stale_hits: u64,
    audit_violations: u64,
    /// Address spaces broadcast-flushed since the current pin epoch began
    /// (cleared on pin/unpin — a broadcast from a previous epoch proves
    /// nothing about this one).
    broadcast_asids: Vec<u16>,
}

impl TlbOracle {
    /// A disabled oracle (every probe is a no-op).
    pub fn disabled() -> TlbOracle {
        TlbOracle::default()
    }

    /// Enable/disable. Toggling resets counters and audit state.
    pub fn set_enabled(&mut self, on: bool) {
        *self = TlbOracle::default();
        self.enabled = on;
    }

    /// Is the oracle recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            enabled: self.enabled,
            checks: self.checks,
            stale_hits: self.stale_hits,
            audit_violations: self.audit_violations,
        }
    }

    /// Cross-check a TLB hit: `cached` is the frame the TLB returned,
    /// `live` the page table's current frame (`None` = no longer mapped).
    /// Returns `true` when the hit was stale. Callers must gate on
    /// [`TlbOracle::is_enabled`] so the disabled path stays free.
    pub fn check_hit(&mut self, cached: FrameId, live: Option<FrameId>) -> bool {
        self.checks += 1;
        let stale = live != Some(cached);
        if stale {
            self.stale_hits += 1;
        }
        stale
    }

    /// The compactor pinned itself: a new audit epoch begins, with no
    /// broadcasts on record yet.
    pub fn note_pin(&mut self) {
        if self.enabled {
            self.broadcast_asids.clear();
        }
    }

    /// The compactor unpinned: broadcasts from the closed epoch no longer
    /// license local-only flushes.
    pub fn note_unpin(&mut self) {
        if self.enabled {
            self.broadcast_asids.clear();
        }
    }

    /// An all-core broadcast flush of `asid` completed.
    pub fn note_broadcast(&mut self, asid: Asid) {
        if self.enabled && !self.broadcast_asids.contains(&asid.0) {
            self.broadcast_asids.push(asid.0);
        }
    }

    /// Audit a `LocalOnly` post-swap flush: legal only when `pinned` and a
    /// broadcast of `asid` happened in the current pin epoch. Returns
    /// `true` on violation (and counts it).
    pub fn audit_local_only(&mut self, asid: Asid, pinned: bool) -> bool {
        let violation = !pinned || !self.broadcast_asids.contains(&asid.0);
        if violation {
            self.audit_violations += 1;
        }
        violation
    }

    /// A shootdown claimed to flush `asid` everywhere it was held, yet a
    /// victim still holds an entry — count the broken postcondition.
    pub fn record_unflushed_victim(&mut self) {
        self.audit_violations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Asid = Asid(1);
    const B: Asid = Asid(2);

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::skylake())
    }

    #[test]
    fn miss_fill_hit() {
        let mut t = tlb();
        assert_eq!(t.lookup(A, 7).0, TlbHit::Miss);
        t.insert(A, 7, FrameId(3));
        let (hit, f) = t.lookup(A, 7);
        assert_eq!(hit, TlbHit::L1);
        assert_eq!(f, Some(FrameId(3)));
        assert_eq!(t.stats(), (2, 1));
    }

    #[test]
    fn asids_are_isolated() {
        let mut t = tlb();
        t.insert(A, 7, FrameId(3));
        assert_eq!(t.lookup(B, 7).0, TlbHit::Miss);
    }

    #[test]
    fn stlb_backstops_l1_eviction() {
        let mut t = tlb();
        // Fill far beyond L1 (64 entries) but within STLB (1536): entries
        // evicted from L1 should still hit in the STLB.
        for vpn in 0..512 {
            t.insert(A, vpn, FrameId(vpn as u32));
        }
        let (hit, f) = t.lookup(A, 0);
        assert_eq!(hit, TlbHit::Stlb);
        assert_eq!(f, Some(FrameId(0)));
        // And it was promoted to L1.
        assert_eq!(t.lookup(A, 0).0, TlbHit::L1);
    }

    #[test]
    fn flush_page_is_precise() {
        let mut t = tlb();
        t.insert(A, 7, FrameId(3));
        t.insert(A, 8, FrameId(4));
        t.flush_page(A, 7);
        assert_eq!(t.lookup(A, 7).0, TlbHit::Miss);
        assert_ne!(t.lookup(A, 8).0, TlbHit::Miss);
    }

    #[test]
    fn flush_asid_spares_other_spaces() {
        let mut t = tlb();
        t.insert(A, 7, FrameId(3));
        t.insert(B, 7, FrameId(9));
        t.flush_asid(A);
        assert_eq!(t.lookup(A, 7).0, TlbHit::Miss);
        assert_eq!(t.lookup(B, 7).1, Some(FrameId(9)));
    }

    #[test]
    fn flush_all_empties() {
        let mut t = tlb();
        for vpn in 0..100 {
            t.insert(A, vpn, FrameId(vpn as u32));
        }
        assert!(t.resident() > 0);
        t.flush_all();
        assert_eq!(t.resident(), 0);
    }

    #[test]
    fn stale_entry_after_pte_swap_without_flush() {
        // The hazard SwapVA must handle: swap the mapping, skip the flush,
        // and the TLB still returns the old frame.
        let mut t = tlb();
        t.insert(A, 7, FrameId(3));
        // Mapping changed to FrameId(5) in the page table... TLB unaware:
        assert_eq!(t.lookup(A, 7).1, Some(FrameId(3)));
        t.flush_page(A, 7);
        assert_eq!(t.lookup(A, 7).0, TlbHit::Miss);
    }
}
