//! Property tests: the page table against a model, and PTE swapping as a
//! permutation of the mapping.


#![cfg(feature = "proptest-tests")]
// Gated off by default: `proptest` is unavailable in the offline build.
// Restore the dev-dependency and run with `--features proptest-tests`.

use proptest::prelude::*;
use std::collections::HashMap;
use svagc_vmem::{FrameId, PageTable, Pte, PteFlags, VirtAddr, VmError};

/// Random-but-valid virtual page addresses across several table subtrees.
fn arb_va() -> impl Strategy<Value = VirtAddr> {
    // A few PGD/PUD/PMD indices and any PTE index.
    (0u64..4, 0u64..4, 0u64..8, 0u64..512)
        .prop_map(|(pgd, pud, pmd, pte)| {
            VirtAddr((pgd << 39) | (pud << 30) | (pmd << 21) | (pte << 12))
        })
}

#[derive(Debug, Clone)]
enum Op {
    Map(VirtAddr, u32),
    Unmap(VirtAddr),
    Translate(VirtAddr),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_va(), 1u32..10_000).prop_map(|(va, f)| Op::Map(va, f)),
        arb_va().prop_map(Op::Unmap),
        arb_va().prop_map(Op::Translate),
    ]
}

proptest! {
    /// The page table behaves exactly like a `HashMap<vpn, frame>`.
    #[test]
    fn page_table_matches_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let mut pt = PageTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Map(va, frame) => {
                    let r = pt.map(va, Pte::map(FrameId(frame), PteFlags::WRITABLE));
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(va.vpn()) {
                        prop_assert!(r.is_ok());
                        e.insert(frame);
                    } else {
                        prop_assert_eq!(r, Err(VmError::AlreadyMapped(va)));
                    }
                }
                Op::Unmap(va) => {
                    let r = pt.unmap(va);
                    match model.remove(&va.vpn()) {
                        Some(f) => prop_assert_eq!(r.unwrap().frame(), FrameId(f)),
                        None => prop_assert!(r.is_err()),
                    }
                }
                Op::Translate(va) => {
                    let r = pt.translate(va);
                    match model.get(&va.vpn()) {
                        Some(&f) => {
                            let pa = r.unwrap();
                            prop_assert_eq!(pa.frame(), FrameId(f));
                            prop_assert_eq!(pa.frame_offset(), va.page_offset());
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
            }
            prop_assert_eq!(pt.mapped_pages(), model.len() as u64);
        }
    }

    /// Any sequence of PTE swaps permutes the frame assignment: the same
    /// multiset of frames stays mapped, just under different pages.
    #[test]
    fn swaps_are_permutations(
        pages in 2u64..40,
        swaps in proptest::collection::vec((0u64..40, 0u64..40), 1..60),
    ) {
        let base = VirtAddr(0x4000_0000);
        let mut pt = PageTable::new();
        for i in 0..pages {
            pt.map(base.add_pages(i), Pte::map(FrameId(i as u32 + 100), PteFlags::WRITABLE))
                .unwrap();
        }
        let mut model: Vec<u32> = (0..pages as u32).map(|i| i + 100).collect();
        for (i, j) in swaps {
            let (i, j) = (i % pages, j % pages);
            pt.swap_ptes(base.add_pages(i), base.add_pages(j)).unwrap();
            model.swap(i as usize, j as usize);
        }
        for i in 0..pages {
            prop_assert_eq!(
                pt.pte(base.add_pages(i)).unwrap().frame(),
                FrameId(model[i as usize])
            );
        }
        prop_assert_eq!(pt.mapped_pages(), pages);
    }

    /// Alignment helpers round-trip: align_down(va) <= va <= align_up(va),
    /// both page-aligned, within one page of the original.
    #[test]
    fn alignment_laws(raw in 0u64..(1 << 47)) {
        let va = VirtAddr(raw);
        let down = va.align_down();
        let up = va.align_up();
        prop_assert!(down.is_page_aligned() && up.is_page_aligned());
        prop_assert!(down <= va && va <= up);
        prop_assert!(va - down < 4096);
        prop_assert!(up - va < 4096);
        prop_assert_eq!(va.is_page_aligned(), down == up);
    }
}
