//! `Bisort` (JOlden): a bitonic-sort binary tree of small nodes.
//!
//! The paper sets the input to 2 M entries; we scale to 64 Ki - 1 nodes
//! (1/32) and keep the structure: a full binary tree of 48-byte objects,
//! churned by rebuilding random subtrees. Small objects dominate, so
//! SwapVA rarely applies — Bisort anchors the "little to gain" end of
//! Fig. 11.
//!
//! GC-safety: the host-side mirror stores [`RootId`]s, never raw object
//! addresses — any allocation may trigger a compaction that moves every
//! node, and only roots (and heap references) are updated by the GC.

use crate::env::JvmEnv;
use crate::workload::Workload;
use svagc_core::GcError;
use svagc_heap::{ObjRef, ObjShape, RootId};
use svagc_metrics::{Cycles, SimRng};

/// Tree depth: `2^DEPTH - 1` nodes.
const DEPTH: u32 = 16;
/// Depth of the subtrees rebuilt each step.
const REBUILD_DEPTH: u32 = 11;

fn node_shape() -> ObjShape {
    // left, right, and two data words (key + checksum).
    ObjShape::with_refs(2, 2)
}

/// The Bisort workload.
pub struct Bisort {
    rng: SimRng,
    /// Root slot of each tree position (complete-tree indexing: children
    /// of `i` at `2i+1`, `2i+2`).
    slots: Vec<RootId>,
    next_key: u64,
}

impl Bisort {
    /// Standard configuration.
    pub fn new() -> Bisort {
        Bisort {
            rng: SimRng::seed_from_u64(59),
            slots: Vec::new(),
            next_key: 1,
        }
    }

    fn node_count() -> usize {
        (1usize << DEPTH) - 1
    }

    /// Allocate a fresh node into slot `idx` and hook it to its parent.
    /// The node is rooted before any further allocation can run, and the
    /// parent is re-read from its root slot (fresh after any GC).
    fn place_node(&mut self, env: &mut JvmEnv, idx: usize) -> Result<(), GcError> {
        let obj = env.alloc(node_shape())?;
        env.roots.set(self.slots[idx], obj);
        let key = self.next_key;
        self.next_key += 1;
        env.app_cycles += env.heap.write_data(env.kernel, env.core, obj, 2, 0, key)?;
        env.app_cycles += env.heap.write_data(env.kernel, env.core, obj, 2, 1, key ^ 0xB15)?;
        env.write_ref(obj, 0, ObjRef::NULL)?;
        env.write_ref(obj, 1, ObjRef::NULL)?;
        if idx > 0 {
            let parent_idx = (idx - 1) / 2;
            let which = ((idx - 1) % 2) as u64;
            let parent = env.roots.get(self.slots[parent_idx]);
            env.write_ref(parent, which, obj)?;
        }
        Ok(())
    }

    /// Rebuild the whole subtree under `top` (inclusive), top-down in BFS
    /// order so parents exist before children hook in.
    fn rebuild_subtree(&mut self, env: &mut JvmEnv, top: usize) -> Result<u64, GcError> {
        let mut frontier = vec![top];
        let mut built = 0u64;
        while let Some(idx) = frontier.pop() {
            self.place_node(env, idx)?;
            built += 1;
            let l = 2 * idx + 1;
            if l < Self::node_count() {
                frontier.push(l);
                frontier.push(l + 1);
            }
        }
        Ok(built)
    }

    /// Walk the subtree through real heap refs, verifying checksums.
    fn check_subtree(&self, env: &mut JvmEnv, obj: ObjRef, depth: u32) -> Result<u64, String> {
        if obj.is_null() {
            return if depth == DEPTH {
                Ok(0)
            } else {
                Err(format!("null interior node at depth {depth}"))
            };
        }
        let (key, t) = env
            .heap
            .read_data(env.kernel, env.core, obj, 2, 0)
            .map_err(|e| e.to_string())?;
        let (flag, t2) = env
            .heap
            .read_data(env.kernel, env.core, obj, 2, 1)
            .map_err(|e| e.to_string())?;
        env.app_cycles += t + t2;
        if flag != key ^ 0xB15 {
            return Err(format!("corrupt node: key {key} checksum {flag}"));
        }
        let (l, tl) = env
            .heap
            .read_ref(env.kernel, env.core, obj, 0)
            .map_err(|e| e.to_string())?;
        let (r, tr) = env
            .heap
            .read_ref(env.kernel, env.core, obj, 1)
            .map_err(|e| e.to_string())?;
        env.app_cycles += tl + tr;
        Ok(1 + self.check_subtree(env, l, depth + 1)? + self.check_subtree(env, r, depth + 1)?)
    }
}

impl Default for Bisort {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for Bisort {
    fn name(&self) -> String {
        "Bisort".into()
    }

    fn threads(&self) -> u32 {
        896
    }

    fn min_heap_bytes(&self) -> u64 {
        let node_bytes = node_shape().size_bytes();
        let rebuild = (1u64 << REBUILD_DEPTH) * node_bytes;
        Self::node_count() as u64 * node_bytes + 2 * rebuild + (64 << 10)
    }

    fn setup(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        self.slots = (0..Self::node_count())
            .map(|_| env.roots.push(ObjRef::NULL))
            .collect();
        self.rebuild_subtree(env, 0)?;
        Ok(())
    }

    fn step(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        // Replace a random depth-REBUILD_DEPTH subtree: old nodes become
        // garbage (their slots and parent link are overwritten).
        let top_levels = DEPTH - REBUILD_DEPTH;
        let first = (1usize << top_levels) - 1;
        let count = 1usize << top_levels;
        let idx = first + self.rng.gen_range(0..count);
        let built = self.rebuild_subtree(env, idx)?;
        // Bitonic merge compute over the rebuilt subtree.
        env.charge_app(Cycles(built * node_shape().size_bytes() * 4));
        Ok(())
    }

    fn default_steps(&self) -> usize {
        120
    }

    fn verify(&mut self, env: &mut JvmEnv) -> Result<(), String> {
        let root = env.roots.get(self.slots[0]);
        let n = self.check_subtree(env, root, 0)?;
        if n != Self::node_count() as u64 {
            return Err(format!("tree lost nodes: {n} of {}", Self::node_count()));
        }
        Ok(())
    }
}
