//! The shared churn engine most benchmarks are built from.
//!
//! A benchmark, from the GC's point of view, is (a) a live set with an
//! object-size distribution, (b) a churn process that retires and
//! re-allocates objects (creating the garbage that fills the 0.2×/1×
//! headroom and triggers full collections), and (c) a compute intensity
//! that sets the app:GC time ratio. The eleven workloads configure this
//! engine (several add bespoke structure on top — trees, graphs, caches).

use crate::env::JvmEnv;
use crate::workload::Workload;
use svagc_core::GcError;
use svagc_heap::{ObjRef, ObjShape, RootId};
use svagc_metrics::{Cycles, SimRng};

/// Object-size distributions (payload bytes).
#[derive(Debug, Clone, Copy)]
pub enum SizeDist {
    /// Every object the same size.
    Fixed(u64),
    /// Uniform in `[lo, hi]`.
    Uniform(u64, u64),
    /// Two-point mixture: `small` with probability `1 - p_large`, `large`
    /// with `p_large` — models suites whose mean hides a heavy tail.
    Mix {
        /// Small-object size.
        small: u64,
        /// Large-object size.
        large: u64,
        /// Probability of drawing `large`.
        p_large: f64,
    },
    /// Log-uniform in `[lo, hi]` (the LRU cache's "1 B to 2 MB" values).
    LogUniform(u64, u64),
}

impl SizeDist {
    /// Draw a size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match *self {
            SizeDist::Fixed(s) => s,
            SizeDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
            SizeDist::Mix { small, large, p_large } => {
                if rng.gen_bool(p_large) {
                    large
                } else {
                    small
                }
            }
            SizeDist::LogUniform(lo, hi) => {
                let (llo, lhi) = ((lo.max(1) as f64).ln(), (hi as f64).ln());
                rng.gen_range(llo..=lhi).exp() as u64
            }
        }
    }

    /// Mean size (for heap sizing).
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(s) => s as f64,
            SizeDist::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
            SizeDist::Mix { small, large, p_large } => {
                small as f64 * (1.0 - p_large) + large as f64 * p_large
            }
            SizeDist::LogUniform(lo, hi) => {
                let (llo, lhi) = ((lo.max(1) as f64).ln(), (hi as f64).ln());
                ((lhi.exp() - llo.exp()) / (lhi - llo)).max(1.0)
            }
        }
    }

    /// Largest possible draw.
    pub fn max(&self) -> u64 {
        match *self {
            SizeDist::Fixed(s) => s,
            SizeDist::Uniform(_, hi) | SizeDist::LogUniform(_, hi) => hi,
            SizeDist::Mix { large, .. } => large,
        }
    }
}

/// Parameters of a churn benchmark.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Display name.
    pub name: String,
    /// Mutator threads (Table II).
    pub threads: u32,
    /// Live objects to keep.
    pub live_objects: usize,
    /// Object-size distribution.
    pub size: SizeDist,
    /// Reference fields per object (wired to long-lived hubs; exercises
    /// the adjust phase without making liveness non-stationary).
    pub refs_per_object: u32,
    /// Fraction of the live set's bytes allocated per step
    /// (garbage + replacements). Controls GC frequency.
    pub alloc_fraction_per_step: f64,
    /// Modeled compute cycles per live byte touched per step ×1000 —
    /// high for compute-bound suites (CryptoAES), low for memory-bound
    /// (SOR, Sparse).
    pub compute_millicycles_per_byte: u64,
    /// Steps in a standard run.
    pub steps: usize,
    /// RNG seed (runs are fully deterministic).
    pub seed: u64,
}

/// A live, stamped object the engine tracks.
#[derive(Debug, Clone, Copy)]
struct LiveObj {
    rid: RootId,
    shape: ObjShape,
    seed: u64,
}

/// The engine: a stationary live set under churn.
pub struct ChurnWorkload {
    spec: ChurnSpec,
    /// Shapes of the initial live set, pre-drawn so the minimum-heap
    /// estimate is exact (setup allocates exactly these).
    initial_shapes: Vec<ObjShape>,
    live: Vec<LiveObj>,
    /// Root slots of the long-lived hub objects (never raw `ObjRef`s:
    /// any allocation can trigger a compaction that moves them).
    hubs: Vec<RootId>,
    rng: SimRng,
    next_seed: u64,
    min_heap: u64,
}

const HUB_COUNT: usize = 8;

impl ChurnWorkload {
    /// Build the engine from a spec.
    pub fn new(spec: ChurnSpec) -> ChurnWorkload {
        // Pre-draw the initial shapes to compute the exact minimum heap:
        // live bytes + alignment slack + room for one churn batch.
        let mut rng = SimRng::seed_from_u64(spec.seed);
        let mut live_bytes = 0u64;
        let mut large_count = 0u64;
        let mut initial_shapes = Vec::with_capacity(spec.live_objects);
        for _ in 0..spec.live_objects {
            let s = spec.size.sample(&mut rng);
            let shape = Self::shape_for(&spec, s);
            live_bytes += shape.size_bytes();
            if shape.size_bytes() >= 10 * 4096 {
                large_count += 2; // pre- and post-alignment gaps
            }
            initial_shapes.push(shape);
        }
        let align_slack = (large_count + 1) * 4096;
        let batch = (live_bytes as f64 * spec.alloc_fraction_per_step) as u64;
        let min_heap = live_bytes + align_slack + batch.max(spec.size.max() * 2) + (64 << 10);
        ChurnWorkload {
            rng: SimRng::seed_from_u64(spec.seed), // fresh stream for the run
            spec,
            initial_shapes,
            live: Vec::new(),
            hubs: Vec::new(),
            next_seed: 1,
            min_heap,
        }
    }

    fn shape_for(spec: &ChurnSpec, payload_bytes: u64) -> ObjShape {
        ObjShape::with_refs(
            spec.refs_per_object,
            payload_bytes.div_ceil(8).max(1) as u32,
        )
    }

    /// Allocate a live object of an exact shape (replacements reuse the
    /// replaced object's shape so the live-set composition is stationary
    /// by construction — the minimum-heap estimate stays exact).
    fn alloc_live_shaped(
        &mut self,
        env: &mut JvmEnv,
        shape: ObjShape,
    ) -> Result<LiveObj, GcError> {
        let seed = self.next_seed;
        self.next_seed += 1_000_000;
        let (rid, obj) = env.alloc_stamped(shape, seed)?;
        for r in 0..self.spec.refs_per_object as u64 {
            let hub_rid = self.hubs[self.rng.gen_range(0..self.hubs.len())];
            let hub = env.roots.get(hub_rid);
            env.write_ref(obj, r, hub)?;
        }
        Ok(LiveObj { rid, shape, seed })
    }

    /// Bytes allocated per step (drives GC cadence; used by drivers to
    /// predict cycle counts).
    pub fn bytes_per_step(&self) -> u64 {
        (self.min_heap as f64 * self.spec.alloc_fraction_per_step) as u64
    }
}

impl Workload for ChurnWorkload {
    fn name(&self) -> String {
        self.spec.name.clone()
    }

    fn threads(&self) -> u32 {
        self.spec.threads
    }

    fn min_heap_bytes(&self) -> u64 {
        self.min_heap
    }

    fn setup(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        for i in 0..HUB_COUNT {
            let (rid, _) = env.alloc_stamped(ObjShape::data(4), 0x1100 + i as u64)?;
            self.hubs.push(rid);
        }
        for i in 0..self.spec.live_objects {
            let shape = self.initial_shapes[i];
            let lo = self.alloc_live_shaped(env, shape)?;
            self.live.push(lo);
        }
        Ok(())
    }

    fn step(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        let target_bytes = (self.min_heap as f64 * self.spec.alloc_fraction_per_step) as u64;
        let mean = self.spec.size.mean().max(64.0);
        let count = ((target_bytes as f64 / mean) as usize).max(1);
        // A quarter of the allocation replaces live objects; the rest is
        // transient garbage.
        let replacements = (count / 4).max(1);
        for _ in 0..replacements {
            let idx = self.rng.gen_range(0..self.live.len());
            let old = self.live[idx];
            env.roots.set(old.rid, ObjRef::NULL);
            let new = self.alloc_live_shaped(env, old.shape)?;
            self.live[idx] = new;
        }
        for _ in 0..count.saturating_sub(replacements) {
            let size = self.spec.size.sample(&mut self.rng);
            let shape = Self::shape_for(&self.spec, size);
            env.alloc(shape)?; // unrooted: instant garbage
        }
        // Compute over a sample of the live set, biased toward a hot
        // subset (real kernels reuse their working vectors; this locality
        // is what memmove-based GC evicts and SwapVA preserves —
        // Table III's mechanism).
        let sample = (self.live.len() / 8).max(1);
        let hot = (self.live.len() / 16).max(1);
        let mut touched = 0u64;
        for i in 0..sample {
            let idx = if i % 4 != 0 {
                self.rng.gen_range(0..hot)
            } else {
                self.rng.gen_range(0..self.live.len())
            };
            let lo = self.live[idx];
            let obj = env.roots.get(lo.rid);
            let bytes = lo.shape.size_bytes();
            env.compute_over(obj, bytes);
            touched += bytes;
        }
        env.charge_app(Cycles(
            touched * self.spec.compute_millicycles_per_byte / 1000,
        ));
        Ok(())
    }

    fn default_steps(&self) -> usize {
        self.spec.steps
    }

    fn verify(&mut self, env: &mut JvmEnv) -> Result<(), String> {
        for lo in &self.live {
            env.check_stamped(lo.rid, lo.shape, lo.seed)
                .map_err(|e| format!("{}: {e}", self.spec.name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_dist_sampling_in_range() {
        let mut rng = SimRng::seed_from_u64(7);
        let d = SizeDist::Uniform(100, 200);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!((100..=200).contains(&s));
        }
        let lu = SizeDist::LogUniform(1, 1 << 21);
        let mut small = 0;
        for _ in 0..1000 {
            let s = lu.sample(&mut rng);
            assert!(s <= 1 << 21);
            if s < 1024 {
                small += 1;
            }
        }
        assert!(small > 300, "log-uniform favors small sizes ({small})");
    }

    #[test]
    fn mix_mean_matches() {
        let d = SizeDist::Mix {
            small: 8_000,
            large: 101_000,
            p_large: 0.45,
        };
        assert!((d.mean() - 49_850.0).abs() < 1.0);
        assert_eq!(d.max(), 101_000);
    }

    #[test]
    fn min_heap_covers_live_set() {
        let w = ChurnWorkload::new(ChurnSpec {
            name: "t".into(),
            threads: 4,
            live_objects: 100,
            size: SizeDist::Fixed(64 << 10),
            refs_per_object: 0,
            alloc_fraction_per_step: 0.01,
            compute_millicycles_per_byte: 100,
            steps: 10,
            seed: 1,
        });
        // 100 x 64 KiB ≈ 6.4 MB live; min heap must exceed it.
        assert!(w.min_heap_bytes() > 100 * (64 << 10));
        assert!(w.min_heap_bytes() < 2 * 100 * (64 << 10));
    }
}
