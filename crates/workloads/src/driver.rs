//! Single-JVM benchmark driver: build machine + heap + collector, run a
//! workload, and report the numbers the paper's figures are made of.

use crate::env::JvmEnv;
use crate::workload::Workload;
use svagc_baselines::{ParallelGc, Shenandoah};
use svagc_core::{
    recover, Collector, ConcurrentCollector, DegradePolicy, GcConfig, GcError, GcLog,
    Lisp2Collector, PressureEscalator, PressureStats, RecoveryError, RecoveryReport,
    RetryPolicy, SchedulerKind, TierController, TierCtlStats, TierPolicy,
};
use svagc_heap::{Heap, HeapConfig, HeapError, HeapVerifier};
use svagc_kernel::{
    CoreId, CrashPlan, CrashPoint, DeviceFaultConfig, DeviceFaultPlan, DeviceStats, FarDevice,
    FarTier, FaultConfig, FaultPlan, Kernel, TierError, TierStats, WalMutation,
};
use svagc_metrics::{
    BandwidthModel, Cycles, MachineConfig, PerfCounters, Registry, TraceEvent,
};
use svagc_vmem::{AddressSpace, Asid, FramePool, OracleStats, TenantId, VmError};

/// Which collector to run.
#[derive(Debug, Clone, Copy)]
pub enum CollectorKind {
    /// SVAGC with all optimizations (the paper's system).
    Svagc,
    /// The same LISP2 collector with memmove only ("-SwapVA").
    SvagcMemmove,
    /// ParallelGC-like baseline.
    ParallelGc,
    /// Shenandoah-like baseline.
    Shenandoah,
    /// Any explicit configuration (ablations).
    Custom(GcConfig),
}

impl CollectorKind {
    /// Instantiate the collector.
    pub fn build(&self, gc_threads: usize) -> Box<dyn Collector> {
        self.build_verified(gc_threads, false)
    }

    /// Instantiate the collector, optionally with post-phase heap
    /// verification (LISP2-based collectors only; the baseline wrappers
    /// keep their own fixed configurations).
    pub fn build_verified(&self, gc_threads: usize, verify_phases: bool) -> Box<dyn Collector> {
        self.build_configured(
            gc_threads,
            verify_phases,
            None,
            DegradePolicy::off(),
            None,
            SchedulerKind::Barrier,
            0,
        )
    }

    /// The resolved LISP2 configuration of this kind, or `None` for the
    /// baseline wrappers (which keep their own fixed configurations and
    /// ignore the transactional knobs).
    #[allow(clippy::too_many_arguments)]
    fn lisp2_config(
        &self,
        gc_threads: usize,
        verify_phases: bool,
        deadline_cycles: Option<u64>,
        degrade: DegradePolicy,
        retry: Option<RetryPolicy>,
        scheduler: SchedulerKind,
        core_base: usize,
    ) -> Option<GcConfig> {
        let with_retry = |cfg: GcConfig| match retry {
            Some(r) => cfg.with_retry_policy(r),
            None => cfg,
        };
        match self {
            CollectorKind::Svagc => Some(with_retry(
                GcConfig::svagc(gc_threads)
                    .with_verify_phases(verify_phases)
                    .with_deadline(deadline_cycles)
                    .with_degrade(degrade)
                    .with_scheduler(scheduler)
                    .with_core_base(core_base),
            )),
            CollectorKind::SvagcMemmove => Some(with_retry(
                GcConfig::lisp2_memmove(gc_threads)
                    .with_verify_phases(verify_phases)
                    .with_deadline(deadline_cycles)
                    .with_degrade(degrade)
                    .with_scheduler(scheduler)
                    .with_core_base(core_base),
            )),
            CollectorKind::Custom(cfg) => Some(with_retry(
                GcConfig {
                    gc_threads,
                    deadline_cycles: deadline_cycles.or(cfg.deadline_cycles),
                    // The run-level knobs win only when explicitly set;
                    // an ablation's Custom config keeps its own choices.
                    scheduler: if scheduler == SchedulerKind::Barrier {
                        cfg.scheduler
                    } else {
                        scheduler
                    },
                    core_base: if core_base == 0 { cfg.core_base } else { core_base },
                    ..*cfg
                }
                .with_verify_phases(verify_phases || cfg.verify_phases)
                .with_degrade(if degrade.enabled { degrade } else { cfg.degrade }),
            )),
            CollectorKind::ParallelGc | CollectorKind::Shenandoah => None,
        }
    }

    /// Instantiate the collector with the full set of run-time knobs:
    /// post-phase verification, per-phase watchdog deadline,
    /// degraded-mode policy, (optionally) a SwapVA retry-policy
    /// override, the scheduling substrate, and the core-affinity base.
    /// The baseline wrappers (ParallelGC, Shenandoah) keep their own
    /// fixed configurations and ignore the transactional knobs.
    #[allow(clippy::too_many_arguments)]
    pub fn build_configured(
        &self,
        gc_threads: usize,
        verify_phases: bool,
        deadline_cycles: Option<u64>,
        degrade: DegradePolicy,
        retry: Option<RetryPolicy>,
        scheduler: SchedulerKind,
        core_base: usize,
    ) -> Box<dyn Collector> {
        match self {
            CollectorKind::ParallelGc => Box::new(ParallelGc::new(gc_threads)),
            CollectorKind::Shenandoah => Box::new(Shenandoah::new(gc_threads)),
            _ => Box::new(Lisp2Collector::new(
                self.lisp2_config(
                    gc_threads,
                    verify_phases,
                    deadline_cycles,
                    degrade,
                    retry,
                    scheduler,
                    core_base,
                )
                .expect("LISP2-based kind"),
            )),
        }
    }

    /// Instantiate the collector for a `--concurrent` run: LISP2-based
    /// kinds get SATB concurrent marking ([`ConcurrentCollector`] wrapping
    /// the same configuration `build_configured` would produce);
    /// Shenandoah arms its SATB barrier so its final-mark pause charge is
    /// proportional to logged work; ParallelGC has no concurrent mode and
    /// builds unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn build_concurrent(
        &self,
        gc_threads: usize,
        verify_phases: bool,
        deadline_cycles: Option<u64>,
        degrade: DegradePolicy,
        retry: Option<RetryPolicy>,
        scheduler: SchedulerKind,
        core_base: usize,
    ) -> Box<dyn Collector> {
        match self {
            CollectorKind::ParallelGc => Box::new(ParallelGc::new(gc_threads)),
            CollectorKind::Shenandoah => {
                let mut s = Shenandoah::new(gc_threads);
                s.arm_satb();
                Box::new(s)
            }
            _ => Box::new(ConcurrentCollector::new(Lisp2Collector::new(
                self.lisp2_config(
                    gc_threads,
                    verify_phases,
                    deadline_cycles,
                    degrade,
                    retry,
                    scheduler,
                    core_base,
                )
                .expect("LISP2-based kind"),
            ))),
        }
    }

    /// Does this collector's heap page-align large objects (Algorithm 3)?
    pub fn aligned_heap(&self) -> bool {
        match self {
            CollectorKind::Svagc | CollectorKind::SvagcMemmove => true,
            CollectorKind::ParallelGc | CollectorKind::Shenandoah => false,
            CollectorKind::Custom(_) => true,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CollectorKind::Svagc => "SVAGC",
            CollectorKind::SvagcMemmove => "SVAGC(-SwapVA)",
            CollectorKind::ParallelGc => "ParallelGC",
            CollectorKind::Shenandoah => "Shenandoah",
            CollectorKind::Custom(_) => "Custom",
        }
    }

    /// Display label of a `--concurrent` run of this kind.
    pub fn concurrent_label(&self) -> &'static str {
        match self {
            CollectorKind::Svagc => "SVAGC-concurrent",
            CollectorKind::SvagcMemmove => "SVAGC(-SwapVA)-concurrent",
            CollectorKind::ParallelGc => "ParallelGC",
            CollectorKind::Shenandoah => "Shenandoah+SATB",
            CollectorKind::Custom(_) => "Custom-concurrent",
        }
    }
}

/// Parameters of one benchmark run.
#[derive(Clone)]
pub struct RunConfig {
    /// The modeled machine.
    pub machine: MachineConfig,
    /// Heap size as a multiple of the workload's minimum (1.2 / 2.0).
    pub heap_factor: f64,
    /// Collector under test.
    pub collector: CollectorKind,
    /// GC worker threads.
    pub gc_threads: usize,
    /// Steps to run (`None` = the workload's default).
    pub steps: Option<usize>,
    /// Cache/DTLB instrumentation (Table III mode; slower).
    pub instrumented: bool,
    /// Shared bandwidth model (multi-JVM); `None` builds a private one.
    pub bandwidth: Option<BandwidthModel>,
    /// Cores effectively available to this JVM's mutators (multi-JVM
    /// sharing); `None` = the whole machine.
    pub effective_cores: Option<usize>,
    /// Address-space id of this JVM.
    pub asid: u16,
    /// Override the swap threshold in pages (`None` = paper default 10).
    pub threshold_pages: Option<u64>,
    /// Per-swap-request fault-injection probability (0.0 = off), split
    /// across failure modes per [`FaultConfig::uniform`].
    pub fault_rate: f64,
    /// Seed of the fault plan (same seed + rate ⇒ same fault sequence).
    pub fault_seed: u64,
    /// Restrict injected faults to the permanent, non-retryable modes
    /// (`EINVAL`/`ENOMEM`) instead of the production-skewed uniform mix —
    /// the profile that defeats retries and exercises fallbacks, fallback
    /// budgets, and transactional rollback.
    pub fault_permanent_only: bool,
    /// Run the heap verifier after every LISP2 phase.
    pub verify_phases: bool,
    /// Per-phase GC watchdog deadline in virtual cycles (`None` = no
    /// deadline). A phase exceeding the budget aborts the cycle and rolls
    /// it back through the compaction journal.
    pub deadline_cycles: Option<u64>,
    /// Degraded-mode circuit-breaker policy applied after aborted cycles
    /// (default off — aborts propagate as errors).
    pub degrade: DegradePolicy,
    /// Record cycle-accurate trace events (requires the `trace` feature;
    /// a no-op sink otherwise). Off by default — the disabled tracer is a
    /// branch on a `None`.
    pub trace: bool,
    /// Run under the stale-translation oracle: every TLB hit is
    /// cross-checked against the live page table and every kernel flush
    /// audited against the Algorithm 4 preconditions. A pure observer —
    /// simulated cycles and counters are identical with it on or off —
    /// but any violation fails the run. Also enabled by setting the
    /// `SVAGC_TLB_ORACLE` environment variable (how CI runs the figure
    /// and chaos suites under the oracle).
    pub tlb_oracle: bool,
    /// Override the collector's SwapVA retry policy (`None` = the
    /// collector default). A zero fallback budget makes every permanent
    /// fault an unrecoverable abort — the profile behind the fault-abort
    /// exit code.
    pub retry: Option<RetryPolicy>,
    /// Arm the kernel's write-ahead journal for PTE-mutating GC
    /// operations (automatic whenever `crash_plans` is non-empty).
    pub wal: bool,
    /// Seeded crash points: the simulated machine dies at the chosen
    /// occurrence, preserving only durable state (vmem, page tables,
    /// write-ahead log). Non-empty plans imply `wal`.
    pub crash_plans: Vec<CrashPlan>,
    /// Seeded write-ahead-log mutation (the crash-matrix teeth: a
    /// protocol corruption recovery MUST detect and fail closed on).
    pub wal_mutation: Option<WalMutation>,
    /// Scheduling substrate for the GC phases: the four-barrier pipeline
    /// (default) or dependency-ordered work packets with stealing.
    pub scheduler: SchedulerKind,
    /// First machine core this JVM's GC workers pin to (multi-JVM runs
    /// give each collector a disjoint base so pinned workers never share
    /// a core).
    pub core_base: usize,
    /// Fleet frame pool this JVM draws its frames from (`None` = private
    /// frames, the single-JVM default — behavior unchanged).
    pub frame_pool: Option<FramePool>,
    /// `(quota, headroom)` to self-register with the pool when it has no
    /// registration for this ASID yet. Fleet drivers pre-register tenants
    /// deterministically; this is for standalone pooled runs.
    pub tenant_quota: Option<(u32, u32)>,
    /// Arm the pressure-escalation ladder (implies on-demand heap commit
    /// so GC can actually return frames to the pool).
    pub pressure: bool,
    /// WAL epoch namespace: the top 16 bits of every epoch this JVM's
    /// journal assigns. Fleet tenants get disjoint namespaces so their
    /// logs can never be confused; 0 (default) leaves epochs unchanged.
    pub wal_namespace: u16,
    /// Run with SATB concurrent marking (`--concurrent`): marking
    /// overlaps mutator execution and only initial/final mark plus
    /// compaction are charged to the pause. LISP2-based collectors wrap
    /// in [`ConcurrentCollector`]; Shenandoah arms its SATB barrier.
    /// The compacted heap is bit-identical to the STW run's.
    pub concurrent: bool,
    /// Arm cold-object tiering: keep this fraction of the heap's
    /// committed pages resident in DRAM and demote the cold rest to a
    /// simulated far-memory device after every GC cycle (`None` = no
    /// far tier; behavior byte-identical to pre-tier runs). The run ends
    /// with a promote-all and the invisibility oracle: residency and
    /// device empty, heap hash equal to the DRAM-only run's.
    pub dram_fraction: Option<f64>,
    /// Per-device-request fault probability (0.0 = fault-free device),
    /// split across transient EIO / latency spikes / torn writebacks per
    /// [`DeviceFaultConfig::uniform`].
    pub device_fault_rate: f64,
    /// Seed of the device fault plan.
    pub device_fault_seed: u64,
    /// Deterministically take the device offline for good after this
    /// many requests (`None` = never). The ladder's permanent rung:
    /// writebacks degrade to DRAM-only, lost fetches end the run with
    /// the device-failed exit code.
    pub device_offline_after: Option<u64>,
    /// Override of [`TierPolicy::max_batch`] (pages demoted per GC
    /// pass). The default cap bounds the added pause; sweeps that want
    /// the DRAM-fraction target actually reached raise it.
    pub tier_max_batch: Option<usize>,
}

impl RunConfig {
    /// Defaults: Xeon 6130, 1.2× heap, SVAGC, 8 GC threads.
    pub fn new(collector: CollectorKind) -> RunConfig {
        RunConfig {
            machine: MachineConfig::xeon_gold_6130(),
            heap_factor: 1.2,
            collector,
            gc_threads: 8,
            steps: None,
            instrumented: false,
            bandwidth: None,
            effective_cores: None,
            asid: 1,
            threshold_pages: None,
            fault_rate: 0.0,
            fault_seed: 0xFA017,
            fault_permanent_only: false,
            verify_phases: false,
            deadline_cycles: None,
            degrade: DegradePolicy::off(),
            trace: false,
            tlb_oracle: false,
            retry: None,
            wal: false,
            crash_plans: Vec::new(),
            wal_mutation: None,
            scheduler: SchedulerKind::Barrier,
            core_base: 0,
            frame_pool: None,
            tenant_quota: None,
            pressure: false,
            wal_namespace: 0,
            concurrent: false,
            dram_fraction: None,
            device_fault_rate: 0.0,
            device_fault_seed: 0xD1CE,
            device_offline_after: None,
            tier_max_batch: None,
        }
    }

    /// Arm cold-object tiering at the given resident DRAM fraction.
    pub fn with_tiering(mut self, dram_fraction: f64) -> RunConfig {
        self.dram_fraction = Some(dram_fraction);
        self
    }

    /// Enable deterministic far-device fault injection at probability `p`.
    pub fn with_device_faults(mut self, p: f64, seed: u64) -> RunConfig {
        self.device_fault_rate = p;
        self.device_fault_seed = seed;
        self
    }

    /// Kill the far device permanently after `n` requests.
    pub fn with_device_offline_after(mut self, n: u64) -> RunConfig {
        self.device_offline_after = Some(n);
        self
    }

    /// Raise the per-pass demotion cap (pages per GC cycle).
    pub fn with_tier_batch(mut self, max_batch: usize) -> RunConfig {
        self.tier_max_batch = Some(max_batch);
        self
    }

    /// Enable SATB concurrent marking.
    pub fn with_concurrent(mut self, on: bool) -> RunConfig {
        self.concurrent = on;
        self
    }

    /// Draw frames from a shared fleet pool (the tenant id is this run's
    /// ASID).
    pub fn with_frame_pool(mut self, pool: FramePool) -> RunConfig {
        self.frame_pool = Some(pool);
        self
    }

    /// Quota/headroom for self-registration with the frame pool.
    pub fn with_tenant_quota(mut self, quota: u32, headroom: u32) -> RunConfig {
        self.tenant_quota = Some((quota, headroom));
        self
    }

    /// Arm the pressure-escalation ladder.
    pub fn with_pressure(mut self, on: bool) -> RunConfig {
        self.pressure = on;
        self
    }

    /// Set the WAL epoch namespace.
    pub fn with_wal_namespace(mut self, ns: u16) -> RunConfig {
        self.wal_namespace = ns;
        self
    }

    /// Select the GC scheduling substrate.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> RunConfig {
        self.scheduler = kind;
        self
    }

    /// Set the core-affinity base of this JVM's GC workers.
    pub fn with_core_base(mut self, base: usize) -> RunConfig {
        self.core_base = base;
        self
    }

    /// Enable deterministic SwapVA fault injection at probability `p`.
    pub fn with_faults(mut self, p: f64, seed: u64) -> RunConfig {
        self.fault_rate = p;
        self.fault_seed = seed;
        self
    }

    /// Enable post-phase heap verification.
    pub fn with_verify_phases(mut self, on: bool) -> RunConfig {
        self.verify_phases = on;
        self
    }

    /// Enable trace-event recording.
    pub fn with_trace(mut self, on: bool) -> RunConfig {
        self.trace = on;
        self
    }

    /// Set the per-phase watchdog deadline (virtual cycles).
    pub fn with_deadline(mut self, cycles: Option<u64>) -> RunConfig {
        self.deadline_cycles = cycles;
        self
    }

    /// Set the degraded-mode policy.
    pub fn with_degrade(mut self, policy: DegradePolicy) -> RunConfig {
        self.degrade = policy;
        self
    }

    /// Enable the stale-translation oracle.
    pub fn with_tlb_oracle(mut self, on: bool) -> RunConfig {
        self.tlb_oracle = on;
        self
    }

    /// Override the SwapVA retry policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> RunConfig {
        self.retry = Some(policy);
        self
    }

    /// Arm the write-ahead journal (crash plans arm it implicitly).
    pub fn with_wal(mut self, on: bool) -> RunConfig {
        self.wal = on;
        self
    }

    /// Install seeded crash points (implies the write-ahead journal).
    pub fn with_crash_plans(mut self, plans: Vec<CrashPlan>) -> RunConfig {
        self.crash_plans = plans;
        self
    }

    /// Install a seeded write-ahead-log mutation (teeth testing).
    pub fn with_wal_mutation(mut self, m: Option<WalMutation>) -> RunConfig {
        self.wal_mutation = m;
        self
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Collector label.
    pub collector: &'static str,
    /// Per-GC-cycle log.
    pub gc: GcLog,
    /// Raw mutator cycles (sum over logical threads).
    pub app_cycles: Cycles,
    /// Mutator wall cycles (divided by effective parallelism, plus
    /// interference absorbed).
    pub app_wall: Cycles,
    /// Total wall cycles: mutator wall + STW pauses.
    pub total_wall: Cycles,
    /// Machine event counters for the whole run.
    pub perf: PerfCounters,
    /// Core frequency for time conversion.
    pub freq_ghz: f64,
    /// Steps executed.
    pub steps: usize,
    /// Heap capacity used for the run.
    pub heap_bytes: u64,
    /// The workload's minimum heap.
    pub min_heap_bytes: u64,
    /// Final fragmentation ratio.
    pub frag_ratio: f64,
    /// Did end-of-run data verification pass?
    pub verify_ok: bool,
    /// FNV content hash of the final live heap (address + header +
    /// payload of every object). Equal hashes ⇔ bit-identical heaps;
    /// the chaos suite compares faulty runs against fault-free ones.
    pub heap_hash: u64,
    /// Trace events recorded during the run (empty unless
    /// [`RunConfig::trace`] was set and the `trace` feature is on).
    pub trace: Vec<TraceEvent>,
    /// Stale-translation oracle counters (all zero when the oracle was
    /// off; a run with violations fails before producing a result, so a
    /// `RunResult` always carries zero `stale_hits`/`audit_violations`).
    pub tlb_oracle: OracleStats,
    /// Pool frames still charged to this tenant at the end of the run
    /// (the live heap's committed footprint; 0 without a frame pool).
    /// The fleet's frame-leak oracle sums these against the pool.
    pub frames_in_use: u32,
    /// Pressure-ladder counters (all zero when pressure was off).
    pub pressure: PressureStats,
    /// Kernel far-tier counters (all zero when tiering was off).
    pub tier: TierStats,
    /// Tiering-policy counters (all zero when tiering was off).
    pub tier_ctl: TierCtlStats,
    /// Far-device counters (all zero when tiering was off).
    pub device: DeviceStats,
    /// Cycles the tier demote passes consumed (included in
    /// [`RunResult::total_wall`] as GC overhead).
    pub tier_cycles: Cycles,
    /// The tier controller's final mode name: `"off"`, `"tiered"`, or
    /// `"dram-only"` (the degrade rung — what the chaos CI greps for).
    pub tier_mode: &'static str,
}

impl RunResult {
    /// Steps per simulated second (the throughput metric of Figs. 15/16).
    pub fn throughput(&self) -> f64 {
        let secs = self.total_wall.at_ghz(self.freq_ghz).as_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.steps as f64 / secs
        }
    }

    /// Total GC pause in milliseconds.
    pub fn gc_total_ms(&self) -> f64 {
        self.gc.total_pause().at_ghz(self.freq_ghz).as_millis()
    }

    /// Max GC pause in milliseconds.
    pub fn gc_max_ms(&self) -> f64 {
        self.gc.max_pause().at_ghz(self.freq_ghz).as_millis()
    }

    /// Average GC pause in milliseconds.
    pub fn gc_avg_ms(&self) -> f64 {
        self.gc.avg_pause().at_ghz(self.freq_ghz).as_millis()
    }

    /// Total GC pause in exact simulated cycles. The BENCH reports pin
    /// these u64s byte-for-byte; the `_ms` views round through `f64`.
    pub fn gc_pause_cycles(&self) -> u64 {
        self.gc.total_pause().get()
    }

    /// Total wall time in exact simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_wall.get()
    }

    /// The unified counter registry of this run: machine events under
    /// `perf.*`, GC-log aggregates under `gc.*`, and (when tracing was on)
    /// trace-event totals under `trace.*`.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        self.perf.register_into(&mut reg);
        self.gc.register_into(&mut reg);
        svagc_metrics::trace::register_events(&self.trace, &mut reg);
        // Oracle verdicts are registered unconditionally (zeros when the
        // oracle was off) so BENCH records always carry the keys; the
        // volume-dependent `checks` counter is registered only when the
        // oracle ran, keeping oracle-off registries byte-identical to
        // pre-oracle ones.
        reg.add("gc.tlb.stale_hits", self.tlb_oracle.stale_hits);
        reg.add("gc.tlb.audit_violations", self.tlb_oracle.audit_violations);
        if self.tlb_oracle.enabled {
            reg.add("gc.tlb.checks", self.tlb_oracle.checks);
        }
        // Tier keys only when tiering ran: tiering-off registries stay
        // byte-identical to pre-tier ones (the perf-baseline digests).
        if self.tier_mode != "off" {
            reg.add("gc.tier.demotions", self.tier.demotions);
            reg.add("gc.tier.promotions", self.tier.promotions);
            reg.add("gc.tier.fetch_on_access", self.tier.fetch_on_access);
            reg.add("gc.tier.discards", self.tier.discards);
            reg.add("gc.tier.retries", self.tier.writeback_retries + self.tier.fetch_retries);
            reg.add("gc.tier.cycles", self.tier.tier_cycles);
            reg.add("gc.tier.far_peak", u64::from(self.tier.far_peak));
            reg.add("gc.tier.device_faults", self.device.faults);
            reg.add("gc.tier.degraded", self.tier_ctl.degraded);
            reg.add("gc.tier.recovered", self.tier_ctl.recovered);
        }
        reg
    }
}

/// How a classified run failed (everything except a clean result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A seeded crash point killed the simulated machine.
    Crash(CrashPoint),
    /// The per-phase GC watchdog deadline expired (circuit breaker off,
    /// or the error surfaced before the breaker could engage).
    Watchdog,
    /// An operational SwapVA fault aborted the run (retry/fallback
    /// budgets exhausted, breaker off).
    FaultAbort,
    /// The degraded-mode ladder ran out of rungs — every mode, down to
    /// single-threaded memmove, failed.
    DegradeExhausted,
    /// The tenant ran out of memory: the pressure ladder (or the plain
    /// collect-once retry) could not bring it back under its frame budget.
    /// Strictly tenant-local in fleet runs.
    OutOfMemory,
    /// The far-memory device permanently lost data the heap needs (a
    /// fetch failed after retries, or the end-of-run promote-all could
    /// not drain the tier). Past the last rung of the tiering ladder —
    /// DRAM-only degradation can no longer help because the bytes are
    /// gone. Strictly tenant-local.
    DeviceFailed,
    /// Anything else: verification failure, oracle violation.
    Other,
}

impl FailureKind {
    /// The CLI process exit code for this failure class. Stable contract
    /// for scripts: 10 watchdog, 11 fault abort, 12 degraded-mode ladder
    /// exhausted, 13 machine crashed, 15 tenant out of memory, 16 far
    /// device failed, 1 anything else (2 is usage, 14 is recovery-failed
    /// on the CLI side).
    pub fn exit_code(&self) -> i32 {
        match self {
            FailureKind::Watchdog => 10,
            FailureKind::FaultAbort => 11,
            FailureKind::DegradeExhausted => 12,
            FailureKind::Crash(_) => 13,
            FailureKind::OutOfMemory => 15,
            FailureKind::DeviceFailed => 16,
            FailureKind::Other => 1,
        }
    }

    /// Stable label (fleet reports, CI greps).
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Watchdog => "watchdog",
            FailureKind::FaultAbort => "fault-abort",
            FailureKind::DegradeExhausted => "degrade-exhausted",
            FailureKind::Crash(_) => "crash",
            FailureKind::OutOfMemory => "out-of-memory",
            FailureKind::DeviceFailed => "device-failed",
            FailureKind::Other => "other",
        }
    }
}

/// A classified run failure: the machine-readable kind plus the
/// human-readable message [`run`] would have returned.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Failure class (drives CLI exit codes).
    pub kind: FailureKind,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RunFailure {}

fn classify(e: &GcError) -> FailureKind {
    if let Some(point) = e.crash_point() {
        return FailureKind::Crash(point);
    }
    // Device loss outranks the operational bucket: a lost far page is not
    // a retryable SwapVA fault, it is the end of the tiering ladder.
    if e.is_device_failure() {
        return FailureKind::DeviceFailed;
    }
    match e {
        GcError::Exhausted(_) => FailureKind::DegradeExhausted,
        GcError::Deadline { .. } => FailureKind::Watchdog,
        GcError::OutOfMemory { .. } => FailureKind::OutOfMemory,
        // A raw quota denial that escaped without the pressure ladder
        // (pressure off, or a non-allocation path) is still an OOM for
        // the exit-code contract.
        GcError::Heap(HeapError::Vm(VmError::QuotaExceeded { .. })) => {
            FailureKind::OutOfMemory
        }
        GcError::Heap(HeapError::NeedGc { .. }) => FailureKind::OutOfMemory,
        e if e.is_operational() => FailureKind::FaultAbort,
        _ => FailureKind::Other,
    }
}

/// One recovery attempt sequence after a crash (see [`CrashReport`]).
#[derive(Debug, Clone)]
pub struct RecoverySummary {
    /// Reboot+recover attempts made (>1 only under double-crash plans).
    pub attempts: u64,
    /// The final attempt's outcome: the verified recovery report, or the
    /// fail-closed reason (bad log, hybrid heap, corruption).
    pub outcome: Result<RecoveryReport, String>,
}

/// What a crashed run leaves behind.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Where the machine died.
    pub point: CrashPoint,
    /// Workload steps fully completed before the crash.
    pub steps_completed: usize,
    /// Recovery results (`None` when recovery was not requested).
    pub recovery: Option<RecoverySummary>,
}

impl CrashReport {
    /// `gc.recovery.*` counter registry for BENCH records and scripts.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.add("gc.recovery.crash_point", self.point.code());
        reg.add("gc.recovery.steps_completed", self.steps_completed as u64);
        match &self.recovery {
            None => reg.add("gc.recovery.attempted", 0),
            Some(s) => {
                reg.add("gc.recovery.attempted", 1);
                reg.add("gc.recovery.attempts", s.attempts);
                match &s.outcome {
                    Ok(r) => {
                        reg.add("gc.recovery.verified", 1);
                        reg.add("gc.recovery.outcome", r.class.code());
                        reg.add("gc.recovery.epoch", r.epoch);
                        reg.add("gc.recovery.undone_ops", r.undone_ops as u64);
                        reg.add("gc.recovery.undone_pages", r.undone_pages);
                    }
                    Err(_) => reg.add("gc.recovery.verified", 0),
                }
            }
        }
        reg
    }
}

/// Outcome of [`run_with_crash`]: either the run completed (no armed
/// crash point fired) or the machine died and the report says what
/// recovery made of the debris.
#[derive(Debug)]
pub enum CrashOutcome {
    /// No crash point fired; the full result is available.
    Completed(Box<RunResult>),
    /// The machine died at a seeded crash point.
    Crashed(Box<CrashReport>),
}

/// Reboot+recover retries after a crash: bounded so a crash plan that
/// also kills recovery itself (double crash) terminates — each armed
/// `InsideRecovery` occurrence fires once, so the plan list length
/// bounds the crashes.
const MAX_RECOVERY_ATTEMPTS: u64 = 8;

enum RunEnd {
    Completed(Box<RunResult>),
    Crashed {
        point: CrashPoint,
        steps_completed: usize,
        kernel: Box<Kernel>,
        space: AddressSpace,
    },
}

/// Run `workload` under `cfg`. Deterministic for fixed inputs.
pub fn run(workload: &mut dyn Workload, cfg: &RunConfig) -> Result<RunResult, String> {
    run_classified(workload, cfg).map_err(|f| f.message)
}

/// [`run`], but failures keep their class (for exit codes and chaos
/// harnesses). A fired crash point is a failure here — use
/// [`run_with_crash`] to recover instead.
pub fn run_classified(
    workload: &mut dyn Workload,
    cfg: &RunConfig,
) -> Result<RunResult, Box<RunFailure>> {
    match run_inner(workload, cfg)? {
        RunEnd::Completed(r) => Ok(*r),
        RunEnd::Crashed { point, steps_completed, .. } => Err(Box::new(RunFailure {
            kind: FailureKind::Crash(point),
            message: format!(
                "machine crashed at seeded crash point {point} after {steps_completed} \
                 completed step(s)"
            ),
        })),
    }
}

/// Run `workload` under `cfg` with crash semantics: if a seeded crash
/// point fires, the simulated machine dies (volatile state gone, durable
/// state kept) and — when `do_recover` is set — the recovery state
/// machine reboots the kernel, replays the write-ahead journal, and
/// verifies the rebuilt heap. Double crashes (plans that also fire
/// inside recovery) are retried up to [`MAX_RECOVERY_ATTEMPTS`] times.
pub fn run_with_crash(
    workload: &mut dyn Workload,
    cfg: &RunConfig,
    do_recover: bool,
) -> Result<CrashOutcome, Box<RunFailure>> {
    match run_inner(workload, cfg)? {
        RunEnd::Completed(r) => Ok(CrashOutcome::Completed(r)),
        RunEnd::Crashed { point, steps_completed, mut kernel, mut space } => {
            let recovery = if do_recover {
                let mut attempts = 0;
                Some(loop {
                    attempts += 1;
                    kernel.reboot();
                    match recover(&mut kernel, space, CoreId(0)) {
                        Ok(s) => {
                            break RecoverySummary { attempts, outcome: Ok(s.report) };
                        }
                        Err(f) => {
                            let double_crash =
                                matches!(f.error, RecoveryError::Crashed { .. });
                            if double_crash && attempts < MAX_RECOVERY_ATTEMPTS {
                                // The crash plan also killed recovery; the
                                // undo already applied is idempotent, so
                                // reboot and replay from scratch.
                                space = f.space;
                                continue;
                            }
                            break RecoverySummary {
                                attempts,
                                outcome: Err(f.error.to_string()),
                            };
                        }
                    }
                })
            } else {
                None
            };
            Ok(CrashOutcome::Crashed(Box::new(CrashReport {
                point,
                steps_completed,
                recovery,
            })))
        }
    }
}

fn run_inner(
    workload: &mut dyn Workload,
    cfg: &RunConfig,
) -> Result<RunEnd, Box<RunFailure>> {
    let min_heap = workload.min_heap_bytes();
    // An aligned (Algorithm 3) heap's "minimum required size" includes its
    // internal fragmentation — the paper bounds it under 5% at the
    // 10-page threshold.
    let min_effective = if cfg.collector.aligned_heap() {
        (min_heap as f64 * 1.05) as u64
    } else {
        min_heap
    };
    let heap_bytes = (min_effective as f64 * cfg.heap_factor) as u64;
    let mut kernel = Kernel::with_bytes(cfg.machine.clone(), heap_bytes + (16 << 20));
    if let Some(bw) = &cfg.bandwidth {
        kernel.share_bandwidth(bw);
    }
    kernel.set_instrumented(cfg.instrumented);
    kernel.set_tracing(cfg.trace);
    // The oracle can also be forced suite-wide from the environment (CI
    // runs the figure and chaos suites under it without touching code).
    let oracle_on = cfg.tlb_oracle || std::env::var_os("SVAGC_TLB_ORACLE").is_some();
    kernel.set_tlb_oracle(oracle_on);
    // Crash plans without a journal would be unrecoverable by
    // construction; arming them arms the WAL.
    kernel.set_wal_enabled(cfg.wal || !cfg.crash_plans.is_empty());
    kernel.set_wal_namespace(cfg.wal_namespace);
    kernel.set_wal_mutation(cfg.wal_mutation);
    if !cfg.crash_plans.is_empty() {
        kernel.set_crash_plans(cfg.crash_plans.clone());
    }
    if let Some(pool) = &cfg.frame_pool {
        // Fleet drivers register tenants deterministically up front (the
        // pool's namespace bases follow registration order); a standalone
        // pooled run self-registers from its own quota.
        let tenant = TenantId(cfg.asid);
        let lease = match pool.lease(tenant) {
            Ok(l) => l,
            Err(_) => {
                let (quota, headroom) = cfg.tenant_quota.ok_or_else(|| {
                    other_failure(format!(
                        "frame pool has no registration for tenant {} and the run \
                         config carries no tenant_quota to self-register",
                        cfg.asid
                    ))
                })?;
                pool.register(tenant, quota, headroom)
                    .map_err(|e| other_failure(e.to_string()))?
            }
        };
        kernel.vmem.frames.attach_lease(lease);
    }

    let mut heap_cfg =
        HeapConfig::new(heap_bytes).with_alignment(cfg.collector.aligned_heap());
    if let Some(t) = cfg.threshold_pages {
        heap_cfg = heap_cfg.with_threshold(t);
    }
    if cfg.pressure {
        // Pressure handling needs on-demand commit: an eagerly mapped
        // heap charges its whole capacity up front and a GC could never
        // return frames to the pool.
        heap_cfg = heap_cfg.with_commit_on_demand(true);
    }
    let heap = Heap::new(&mut kernel, Asid(cfg.asid), heap_cfg).map_err(|e| {
        let g: GcError = e.into();
        Box::new(RunFailure { kind: classify(&g), message: g.to_string() })
    })?;
    let collector = if cfg.concurrent {
        cfg.collector.build_concurrent(
            cfg.gc_threads,
            cfg.verify_phases,
            cfg.deadline_cycles,
            cfg.degrade,
            cfg.retry,
            cfg.scheduler,
            cfg.core_base,
        )
    } else {
        cfg.collector.build_configured(
            cfg.gc_threads,
            cfg.verify_phases,
            cfg.deadline_cycles,
            cfg.degrade,
            cfg.retry,
            cfg.scheduler,
            cfg.core_base,
        )
    };
    if cfg.fault_rate > 0.0 {
        let fc = if cfg.fault_permanent_only {
            FaultConfig::permanent_only(cfg.fault_rate, cfg.fault_seed)
        } else {
            FaultConfig::uniform(cfg.fault_rate, cfg.fault_seed)
        };
        kernel.set_fault_plan(Some(FaultPlan::new(fc)));
    }
    if cfg.dram_fraction.is_some() {
        // Device capacity covers the whole heap plus slack: capacity is
        // never the failure under test, DeviceFull only steers policy.
        let capacity = (heap_bytes / svagc_vmem::PAGE_SIZE) as u32 + 64;
        let mut device = FarDevice::new(capacity);
        if cfg.device_fault_rate > 0.0 || cfg.device_offline_after.is_some() {
            let mut dc =
                DeviceFaultConfig::uniform(cfg.device_fault_rate, cfg.device_fault_seed);
            if let Some(n) = cfg.device_offline_after {
                dc = dc.with_offline_after(n);
            }
            device.set_fault_plan(Some(DeviceFaultPlan::new(dc)));
        }
        kernel.set_far_tier(Some(FarTier::new(device, RetryPolicy::default())));
        // fold_epochs partitions tier records out of the GC epoch stream,
        // so recovery needs the journal whenever residency can change.
        kernel.set_wal_enabled(true);
    }

    let mut env = JvmEnv::new(&mut kernel, heap, collector);
    if cfg.pressure {
        env.pressure = PressureEscalator::new(true);
    }
    if let Some(frac) = cfg.dram_fraction {
        let mut policy = TierPolicy::new(frac);
        if let Some(b) = cfg.tier_max_batch {
            policy.max_batch = b;
        }
        env.tier = TierController::new(policy);
    }
    let steps = cfg.steps.unwrap_or_else(|| workload.default_steps());
    let mut completed = 0usize;
    // (error, Some(step) | None for setup)
    let mut gc_err: Option<(GcError, Option<usize>)> = None;
    if let Err(e) = workload.setup(&mut env) {
        gc_err = Some((e, None));
    } else {
        for s in 0..steps {
            match workload.step(&mut env) {
                Ok(()) => completed = s + 1,
                Err(e) => {
                    gc_err = Some((e, Some(s)));
                    break;
                }
            }
        }
    }
    if let Some((e, at_step)) = gc_err {
        // Destructuring the env releases its borrow of the kernel so a
        // crash can hand the dead machine (durable state) to recovery.
        let JvmEnv { heap, .. } = env;
        if let Some(point) = e.crash_point() {
            return Ok(RunEnd::Crashed {
                point,
                steps_completed: completed,
                kernel: Box::new(kernel),
                space: heap.into_space(),
            });
        }
        let message = match at_step {
            Some(s) => format!("step {s}: {e}"),
            None => e.to_string(),
        };
        return Err(Box::new(RunFailure { kind: classify(&e), message }));
    }
    workload.verify(&mut env).map_err(other_failure)?;
    let verify_ok = true;

    // End-of-run tier drain + invisibility oracle: promote every far page
    // home, then demand the tier left no trace — residency empty, device
    // empty, no far-charged pool frames. The content hash below is then
    // computed over an all-resident heap, so equal hashes against a
    // DRAM-only run prove the tier was invisible to the mutator. The drain
    // itself is oracle machinery, not measured work: its cycles stay out
    // of `total_wall` (cold objects would have stayed far in production).
    let tier_mode = if env.tier.enabled() { env.tier.mode().name() } else { "off" };
    let tier_ctl_stats = env.tier.stats;
    let tier_cycles = env.tier_cycles;
    if env.kernel.far_tier().is_some() {
        if let Err(e) = env.kernel.tier_promote_all() {
            let JvmEnv { heap, .. } = env;
            // A seeded crash point firing inside the drain is a machine
            // crash (recovery's job), not a device verdict.
            if let TierError::Crashed { point } = e {
                return Ok(RunEnd::Crashed {
                    point,
                    steps_completed: completed,
                    kernel: Box::new(kernel),
                    space: heap.into_space(),
                });
            }
            return Err(Box::new(RunFailure {
                kind: FailureKind::DeviceFailed,
                message: format!(
                    "end-of-run promote-all could not drain the far tier: {e}"
                ),
            }));
        }
    }
    let (tier_stats, device_stats) = match env.kernel.far_tier() {
        Some(t) => {
            if t.far_count() != 0 || t.slots_in_use() != 0 {
                return Err(other_failure(format!(
                    "tier invisibility oracle: {} far frame(s) and {} device \
                     slot(s) survived the end-of-run promote-all",
                    t.far_count(),
                    t.slots_in_use()
                )));
            }
            (t.stats(), t.device_stats())
        }
        None => (TierStats::default(), DeviceStats::default()),
    };
    if let Some(lease) = env.kernel.vmem.frames.lease() {
        let far_charged = lease.stats().far_in_use;
        if far_charged != 0 {
            return Err(other_failure(format!(
                "tier invisibility oracle: {far_charged} pool frame(s) still \
                 charged as far after the end-of-run promote-all"
            )));
        }
    }

    let gc_log = env.collector.log().clone();
    let app_cycles = env.app_cycles;
    let frag_ratio = env.heap.stats.frag_ratio();
    let pressure_stats = env.pressure.stats;
    let JvmEnv { heap: mut final_heap, .. } = env;
    let heap_hash = HeapVerifier::new().content_hash(&kernel, &mut final_heap);
    drop(final_heap);
    let frames_in_use = kernel
        .vmem
        .frames
        .lease()
        .map(|l| l.stats().in_use)
        .unwrap_or(0);
    let trace = kernel.take_trace();
    let oracle_stats = kernel.tlb_oracle_stats();
    if oracle_stats.stale_hits > 0 || oracle_stats.audit_violations > 0 {
        return Err(other_failure(format!(
            "stale-TLB oracle: {} stale hit(s), {} flush-protocol audit violation(s) \
             over {} checked TLB hits — the shootdown protocol let a core translate \
             through a dead entry",
            oracle_stats.stale_hits, oracle_stats.audit_violations, oracle_stats.checks
        )));
    }

    let cores = cfg.effective_cores.unwrap_or(cfg.machine.cores).max(1);
    let parallelism = (workload.threads() as usize).min(cores).max(1) as u64;
    // Mutators absorb IPI interference from this JVM's own shootdowns too.
    let app_wall = app_cycles / parallelism + gc_log.total_interference() / parallelism;
    // Tier demote passes ran inside the GC safepoint window: GC overhead.
    let total_wall = app_wall + gc_log.total_pause() + tier_cycles;

    Ok(RunEnd::Completed(Box::new(RunResult {
        workload: workload.name(),
        collector: if cfg.concurrent {
            cfg.collector.concurrent_label()
        } else {
            cfg.collector.label()
        },
        gc: gc_log,
        app_cycles,
        app_wall,
        total_wall,
        perf: kernel.perf,
        freq_ghz: cfg.machine.freq_ghz,
        steps,
        heap_bytes,
        min_heap_bytes: min_heap,
        frag_ratio,
        verify_ok,
        heap_hash,
        trace,
        tlb_oracle: oracle_stats,
        frames_in_use,
        pressure: pressure_stats,
        tier: tier_stats,
        tier_ctl: tier_ctl_stats,
        device: device_stats,
        tier_cycles,
        tier_mode,
    })))
}

fn other_failure(message: String) -> Box<RunFailure> {
    Box::new(RunFailure { kind: FailureKind::Other, message })
}
