//! Single-JVM benchmark driver: build machine + heap + collector, run a
//! workload, and report the numbers the paper's figures are made of.

use crate::env::JvmEnv;
use crate::workload::Workload;
use svagc_baselines::{ParallelGc, Shenandoah};
use svagc_core::{Collector, DegradePolicy, GcConfig, GcLog, Lisp2Collector};
use svagc_heap::{Heap, HeapConfig, HeapVerifier};
use svagc_kernel::{FaultConfig, FaultPlan, Kernel};
use svagc_metrics::{
    BandwidthModel, Cycles, MachineConfig, PerfCounters, Registry, TraceEvent,
};
use svagc_vmem::{Asid, OracleStats};

/// Which collector to run.
#[derive(Debug, Clone, Copy)]
pub enum CollectorKind {
    /// SVAGC with all optimizations (the paper's system).
    Svagc,
    /// The same LISP2 collector with memmove only ("-SwapVA").
    SvagcMemmove,
    /// ParallelGC-like baseline.
    ParallelGc,
    /// Shenandoah-like baseline.
    Shenandoah,
    /// Any explicit configuration (ablations).
    Custom(GcConfig),
}

impl CollectorKind {
    /// Instantiate the collector.
    pub fn build(&self, gc_threads: usize) -> Box<dyn Collector> {
        self.build_verified(gc_threads, false)
    }

    /// Instantiate the collector, optionally with post-phase heap
    /// verification (LISP2-based collectors only; the baseline wrappers
    /// keep their own fixed configurations).
    pub fn build_verified(&self, gc_threads: usize, verify_phases: bool) -> Box<dyn Collector> {
        self.build_configured(gc_threads, verify_phases, None, DegradePolicy::off())
    }

    /// Instantiate the collector with the full set of run-time knobs:
    /// post-phase verification, per-phase watchdog deadline, and
    /// degraded-mode policy. The baseline wrappers (ParallelGC,
    /// Shenandoah) keep their own fixed configurations and ignore the
    /// transactional knobs.
    pub fn build_configured(
        &self,
        gc_threads: usize,
        verify_phases: bool,
        deadline_cycles: Option<u64>,
        degrade: DegradePolicy,
    ) -> Box<dyn Collector> {
        match self {
            CollectorKind::Svagc => Box::new(Lisp2Collector::new(
                GcConfig::svagc(gc_threads)
                    .with_verify_phases(verify_phases)
                    .with_deadline(deadline_cycles)
                    .with_degrade(degrade),
            )),
            CollectorKind::SvagcMemmove => Box::new(Lisp2Collector::new(
                GcConfig::lisp2_memmove(gc_threads)
                    .with_verify_phases(verify_phases)
                    .with_deadline(deadline_cycles)
                    .with_degrade(degrade),
            )),
            CollectorKind::ParallelGc => Box::new(ParallelGc::new(gc_threads)),
            CollectorKind::Shenandoah => Box::new(Shenandoah::new(gc_threads)),
            CollectorKind::Custom(cfg) => Box::new(Lisp2Collector::new(
                GcConfig {
                    gc_threads,
                    deadline_cycles: deadline_cycles.or(cfg.deadline_cycles),
                    ..*cfg
                }
                .with_verify_phases(verify_phases || cfg.verify_phases)
                .with_degrade(if degrade.enabled { degrade } else { cfg.degrade }),
            )),
        }
    }

    /// Does this collector's heap page-align large objects (Algorithm 3)?
    pub fn aligned_heap(&self) -> bool {
        match self {
            CollectorKind::Svagc | CollectorKind::SvagcMemmove => true,
            CollectorKind::ParallelGc | CollectorKind::Shenandoah => false,
            CollectorKind::Custom(_) => true,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CollectorKind::Svagc => "SVAGC",
            CollectorKind::SvagcMemmove => "SVAGC(-SwapVA)",
            CollectorKind::ParallelGc => "ParallelGC",
            CollectorKind::Shenandoah => "Shenandoah",
            CollectorKind::Custom(_) => "Custom",
        }
    }
}

/// Parameters of one benchmark run.
#[derive(Clone)]
pub struct RunConfig {
    /// The modeled machine.
    pub machine: MachineConfig,
    /// Heap size as a multiple of the workload's minimum (1.2 / 2.0).
    pub heap_factor: f64,
    /// Collector under test.
    pub collector: CollectorKind,
    /// GC worker threads.
    pub gc_threads: usize,
    /// Steps to run (`None` = the workload's default).
    pub steps: Option<usize>,
    /// Cache/DTLB instrumentation (Table III mode; slower).
    pub instrumented: bool,
    /// Shared bandwidth model (multi-JVM); `None` builds a private one.
    pub bandwidth: Option<BandwidthModel>,
    /// Cores effectively available to this JVM's mutators (multi-JVM
    /// sharing); `None` = the whole machine.
    pub effective_cores: Option<usize>,
    /// Address-space id of this JVM.
    pub asid: u16,
    /// Override the swap threshold in pages (`None` = paper default 10).
    pub threshold_pages: Option<u64>,
    /// Per-swap-request fault-injection probability (0.0 = off), split
    /// across failure modes per [`FaultConfig::uniform`].
    pub fault_rate: f64,
    /// Seed of the fault plan (same seed + rate ⇒ same fault sequence).
    pub fault_seed: u64,
    /// Restrict injected faults to the permanent, non-retryable modes
    /// (`EINVAL`/`ENOMEM`) instead of the production-skewed uniform mix —
    /// the profile that defeats retries and exercises fallbacks, fallback
    /// budgets, and transactional rollback.
    pub fault_permanent_only: bool,
    /// Run the heap verifier after every LISP2 phase.
    pub verify_phases: bool,
    /// Per-phase GC watchdog deadline in virtual cycles (`None` = no
    /// deadline). A phase exceeding the budget aborts the cycle and rolls
    /// it back through the compaction journal.
    pub deadline_cycles: Option<u64>,
    /// Degraded-mode circuit-breaker policy applied after aborted cycles
    /// (default off — aborts propagate as errors).
    pub degrade: DegradePolicy,
    /// Record cycle-accurate trace events (requires the `trace` feature;
    /// a no-op sink otherwise). Off by default — the disabled tracer is a
    /// branch on a `None`.
    pub trace: bool,
    /// Run under the stale-translation oracle: every TLB hit is
    /// cross-checked against the live page table and every kernel flush
    /// audited against the Algorithm 4 preconditions. A pure observer —
    /// simulated cycles and counters are identical with it on or off —
    /// but any violation fails the run. Also enabled by setting the
    /// `SVAGC_TLB_ORACLE` environment variable (how CI runs the figure
    /// and chaos suites under the oracle).
    pub tlb_oracle: bool,
}

impl RunConfig {
    /// Defaults: Xeon 6130, 1.2× heap, SVAGC, 8 GC threads.
    pub fn new(collector: CollectorKind) -> RunConfig {
        RunConfig {
            machine: MachineConfig::xeon_gold_6130(),
            heap_factor: 1.2,
            collector,
            gc_threads: 8,
            steps: None,
            instrumented: false,
            bandwidth: None,
            effective_cores: None,
            asid: 1,
            threshold_pages: None,
            fault_rate: 0.0,
            fault_seed: 0xFA017,
            fault_permanent_only: false,
            verify_phases: false,
            deadline_cycles: None,
            degrade: DegradePolicy::off(),
            trace: false,
            tlb_oracle: false,
        }
    }

    /// Enable deterministic SwapVA fault injection at probability `p`.
    pub fn with_faults(mut self, p: f64, seed: u64) -> RunConfig {
        self.fault_rate = p;
        self.fault_seed = seed;
        self
    }

    /// Enable post-phase heap verification.
    pub fn with_verify_phases(mut self, on: bool) -> RunConfig {
        self.verify_phases = on;
        self
    }

    /// Enable trace-event recording.
    pub fn with_trace(mut self, on: bool) -> RunConfig {
        self.trace = on;
        self
    }

    /// Set the per-phase watchdog deadline (virtual cycles).
    pub fn with_deadline(mut self, cycles: Option<u64>) -> RunConfig {
        self.deadline_cycles = cycles;
        self
    }

    /// Set the degraded-mode policy.
    pub fn with_degrade(mut self, policy: DegradePolicy) -> RunConfig {
        self.degrade = policy;
        self
    }

    /// Enable the stale-translation oracle.
    pub fn with_tlb_oracle(mut self, on: bool) -> RunConfig {
        self.tlb_oracle = on;
        self
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Collector label.
    pub collector: &'static str,
    /// Per-GC-cycle log.
    pub gc: GcLog,
    /// Raw mutator cycles (sum over logical threads).
    pub app_cycles: Cycles,
    /// Mutator wall cycles (divided by effective parallelism, plus
    /// interference absorbed).
    pub app_wall: Cycles,
    /// Total wall cycles: mutator wall + STW pauses.
    pub total_wall: Cycles,
    /// Machine event counters for the whole run.
    pub perf: PerfCounters,
    /// Core frequency for time conversion.
    pub freq_ghz: f64,
    /// Steps executed.
    pub steps: usize,
    /// Heap capacity used for the run.
    pub heap_bytes: u64,
    /// The workload's minimum heap.
    pub min_heap_bytes: u64,
    /// Final fragmentation ratio.
    pub frag_ratio: f64,
    /// Did end-of-run data verification pass?
    pub verify_ok: bool,
    /// FNV content hash of the final live heap (address + header +
    /// payload of every object). Equal hashes ⇔ bit-identical heaps;
    /// the chaos suite compares faulty runs against fault-free ones.
    pub heap_hash: u64,
    /// Trace events recorded during the run (empty unless
    /// [`RunConfig::trace`] was set and the `trace` feature is on).
    pub trace: Vec<TraceEvent>,
    /// Stale-translation oracle counters (all zero when the oracle was
    /// off; a run with violations fails before producing a result, so a
    /// `RunResult` always carries zero `stale_hits`/`audit_violations`).
    pub tlb_oracle: OracleStats,
}

impl RunResult {
    /// Steps per simulated second (the throughput metric of Figs. 15/16).
    pub fn throughput(&self) -> f64 {
        let secs = self.total_wall.at_ghz(self.freq_ghz).as_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.steps as f64 / secs
        }
    }

    /// Total GC pause in milliseconds.
    pub fn gc_total_ms(&self) -> f64 {
        self.gc.total_pause().at_ghz(self.freq_ghz).as_millis()
    }

    /// Max GC pause in milliseconds.
    pub fn gc_max_ms(&self) -> f64 {
        self.gc.max_pause().at_ghz(self.freq_ghz).as_millis()
    }

    /// Average GC pause in milliseconds.
    pub fn gc_avg_ms(&self) -> f64 {
        self.gc.avg_pause().at_ghz(self.freq_ghz).as_millis()
    }

    /// Total GC pause in exact simulated cycles. The BENCH reports pin
    /// these u64s byte-for-byte; the `_ms` views round through `f64`.
    pub fn gc_pause_cycles(&self) -> u64 {
        self.gc.total_pause().get()
    }

    /// Total wall time in exact simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_wall.get()
    }

    /// The unified counter registry of this run: machine events under
    /// `perf.*`, GC-log aggregates under `gc.*`, and (when tracing was on)
    /// trace-event totals under `trace.*`.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        self.perf.register_into(&mut reg);
        self.gc.register_into(&mut reg);
        svagc_metrics::trace::register_events(&self.trace, &mut reg);
        // Oracle verdicts are registered unconditionally (zeros when the
        // oracle was off) so BENCH records always carry the keys; the
        // volume-dependent `checks` counter is registered only when the
        // oracle ran, keeping oracle-off registries byte-identical to
        // pre-oracle ones.
        reg.add("gc.tlb.stale_hits", self.tlb_oracle.stale_hits);
        reg.add("gc.tlb.audit_violations", self.tlb_oracle.audit_violations);
        if self.tlb_oracle.enabled {
            reg.add("gc.tlb.checks", self.tlb_oracle.checks);
        }
        reg
    }
}

/// Run `workload` under `cfg`. Deterministic for fixed inputs.
pub fn run(workload: &mut dyn Workload, cfg: &RunConfig) -> Result<RunResult, String> {
    let min_heap = workload.min_heap_bytes();
    // An aligned (Algorithm 3) heap's "minimum required size" includes its
    // internal fragmentation — the paper bounds it under 5% at the
    // 10-page threshold.
    let min_effective = if cfg.collector.aligned_heap() {
        (min_heap as f64 * 1.05) as u64
    } else {
        min_heap
    };
    let heap_bytes = (min_effective as f64 * cfg.heap_factor) as u64;
    let mut kernel = Kernel::with_bytes(cfg.machine.clone(), heap_bytes + (16 << 20));
    if let Some(bw) = &cfg.bandwidth {
        kernel.share_bandwidth(bw);
    }
    kernel.set_instrumented(cfg.instrumented);
    kernel.set_tracing(cfg.trace);
    // The oracle can also be forced suite-wide from the environment (CI
    // runs the figure and chaos suites under it without touching code).
    let oracle_on = cfg.tlb_oracle || std::env::var_os("SVAGC_TLB_ORACLE").is_some();
    kernel.set_tlb_oracle(oracle_on);

    let mut heap_cfg =
        HeapConfig::new(heap_bytes).with_alignment(cfg.collector.aligned_heap());
    if let Some(t) = cfg.threshold_pages {
        heap_cfg = heap_cfg.with_threshold(t);
    }
    let heap = Heap::new(&mut kernel, Asid(cfg.asid), heap_cfg).map_err(|e| e.to_string())?;
    let collector = cfg.collector.build_configured(
        cfg.gc_threads,
        cfg.verify_phases,
        cfg.deadline_cycles,
        cfg.degrade,
    );
    if cfg.fault_rate > 0.0 {
        let fc = if cfg.fault_permanent_only {
            FaultConfig::permanent_only(cfg.fault_rate, cfg.fault_seed)
        } else {
            FaultConfig::uniform(cfg.fault_rate, cfg.fault_seed)
        };
        kernel.set_fault_plan(Some(FaultPlan::new(fc)));
    }

    let mut env = JvmEnv::new(&mut kernel, heap, collector);
    workload.setup(&mut env).map_err(|e| e.to_string())?;
    let steps = cfg.steps.unwrap_or_else(|| workload.default_steps());
    for s in 0..steps {
        workload
            .step(&mut env)
            .map_err(|e| format!("step {s}: {e}"))?;
    }
    workload.verify(&mut env)?;
    let verify_ok = true;

    let gc_log = env.collector.log().clone();
    let app_cycles = env.app_cycles;
    let frag_ratio = env.heap.stats.frag_ratio();
    let JvmEnv { heap: mut final_heap, .. } = env;
    let heap_hash = HeapVerifier::new().content_hash(&kernel, &mut final_heap);
    drop(final_heap);
    let trace = kernel.take_trace();
    let oracle_stats = kernel.tlb_oracle_stats();
    if oracle_stats.stale_hits > 0 || oracle_stats.audit_violations > 0 {
        return Err(format!(
            "stale-TLB oracle: {} stale hit(s), {} flush-protocol audit violation(s) \
             over {} checked TLB hits — the shootdown protocol let a core translate \
             through a dead entry",
            oracle_stats.stale_hits, oracle_stats.audit_violations, oracle_stats.checks
        ));
    }

    let cores = cfg.effective_cores.unwrap_or(cfg.machine.cores).max(1);
    let parallelism = (workload.threads() as usize).min(cores).max(1) as u64;
    // Mutators absorb IPI interference from this JVM's own shootdowns too.
    let app_wall = app_cycles / parallelism + gc_log.total_interference() / parallelism;
    let total_wall = app_wall + gc_log.total_pause();

    Ok(RunResult {
        workload: workload.name(),
        collector: cfg.collector.label(),
        gc: gc_log,
        app_cycles,
        app_wall,
        total_wall,
        perf: kernel.perf,
        freq_ghz: cfg.machine.freq_ghz,
        steps,
        heap_bytes,
        min_heap_bytes: min_heap,
        frag_ratio,
        verify_ok,
        heap_hash,
        trace,
        tlb_oracle: oracle_stats,
    })
}
