//! The simulated JVM a workload runs in: heap + roots + collector +
//! mutator-time accounting, with GC-on-demand allocation.

use svagc_core::{Collector, GcError, PressureAction, PressureEscalator, TierController};
use svagc_heap::{Heap, HeapError, ObjRef, ObjShape, RootId, RootSet, TlabAllocator};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::{AccessKind, Cycles};
use svagc_vmem::VmError;

/// Upper bound on workload TLAB size (shrunk for small heaps).
const TLAB_BYTES_MAX: u64 = 1 << 20;

/// One running JVM instance.
pub struct JvmEnv<'a> {
    /// The machine this JVM runs on (shared in multi-JVM experiments).
    pub kernel: &'a mut Kernel,
    /// The managed heap.
    pub heap: Heap,
    /// GC roots.
    pub roots: RootSet,
    /// The active collector.
    pub collector: Box<dyn Collector>,
    /// Bidirectional TLAB front-end (§IV's fragmentation fix).
    tlab: TlabAllocator,
    /// Accumulated mutator (application) cycles.
    pub app_cycles: Cycles,
    /// The core mutator work is charged to.
    pub core: CoreId,
    /// Pressure-escalation state machine. Inert by default; the fleet
    /// driver arms it for tenants running under a shared frame pool
    /// (arming changes the allocation path, so pressure-off runs are
    /// byte-identical to pre-pressure ones).
    pub pressure: PressureEscalator,
    /// Cold-object tiering policy. Inert by default; drivers arm it
    /// (together with a kernel far tier) to demote cold heap pages after
    /// every GC cycle. Off ⇒ every collect path is byte-identical to
    /// pre-tier code.
    pub tier: TierController,
    /// Simulated cycles the tier demote passes consumed (GC overhead,
    /// charged to wall time alongside the pauses).
    pub tier_cycles: Cycles,
}

impl<'a> JvmEnv<'a> {
    /// Wire up an environment.
    pub fn new(
        kernel: &'a mut Kernel,
        heap: Heap,
        collector: Box<dyn Collector>,
    ) -> JvmEnv<'a> {
        let tlab_bytes = (heap.capacity() / 16).clamp(64 << 10, TLAB_BYTES_MAX);
        JvmEnv {
            kernel,
            heap,
            roots: RootSet::new(),
            collector,
            tlab: TlabAllocator::new(tlab_bytes),
            app_cycles: Cycles::ZERO,
            core: CoreId(0),
            pressure: PressureEscalator::new(false),
            tier: TierController::off(),
            tier_cycles: Cycles::ZERO,
        }
    }

    /// The post-cycle tiering pass: demote cold pages until the DRAM
    /// target holds (or degrade, per the controller's ladder). Must run
    /// after *every* collection, whichever path triggered it, so the
    /// hotness signal and the resident set stay in step with the GC
    /// schedule.
    fn tier_pass(&mut self) -> Result<(), GcError> {
        if !self.tier.enabled() {
            return Ok(());
        }
        let (base, top) = (self.heap.base(), self.heap.top());
        let t = self
            .tier
            .after_cycle(self.kernel, self.heap.space(), base, top)?;
        self.tier_cycles += t;
        Ok(())
    }

    /// Allocate through the TLAB front-end, collecting once if the heap is
    /// full. A second failure is a genuine OOM and propagates. The TLAB is
    /// retired before any GC (compaction invalidates its cursors).
    ///
    /// With the [`JvmEnv::pressure`] escalator armed, denials instead walk
    /// the pressure ladder (minor GC → full GC → degrade → a tenant-local
    /// [`GcError::OutOfMemory`]) and successes feed the background pressure
    /// signal.
    pub fn alloc(&mut self, shape: ObjShape) -> Result<ObjRef, GcError> {
        if self.pressure.enabled() {
            return self.alloc_pressured(shape);
        }
        match self
            .tlab
            .alloc(&mut self.heap, self.kernel, self.core, shape)
        {
            Ok((obj, t)) => {
                self.app_cycles += t;
                Ok(obj)
            }
            Err(HeapError::NeedGc { .. }) => {
                self.tlab.retire();
                self.collector
                    .collect(self.kernel, &mut self.heap, &mut self.roots)?;
                self.tier_pass()?;
                let (obj, t) = self
                    .tlab
                    .alloc(&mut self.heap, self.kernel, self.core, shape)?;
                self.app_cycles += t;
                Ok(obj)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The pressure-armed allocation path: every heap-full or
    /// quota-denied attempt buys the next rung of the remedy ladder, and
    /// the ladder's end is a typed, tenant-local OOM — never a panic,
    /// never another tenant's frames.
    fn alloc_pressured(&mut self, shape: ObjShape) -> Result<ObjRef, GcError> {
        let requested = shape.size_bytes();
        let mut last_action = "none";
        // The proactive signal remedy must run *before* the allocation it
        // protects: a fresh object is unrooted until the caller links it,
        // so a GC after success would sweep it.
        self.check_pressure_signal()?;
        loop {
            match self
                .tlab
                .alloc(&mut self.heap, self.kernel, self.core, shape)
            {
                Ok((obj, t)) => {
                    self.app_cycles += t;
                    self.pressure.on_success();
                    return Ok(obj);
                }
                Err(HeapError::NeedGc { .. })
                | Err(HeapError::Vm(VmError::QuotaExceeded { .. })) => {
                    self.tlab.retire();
                    let action = self.pressure.on_denial();
                    match action {
                        PressureAction::MinorGc => self.pressure_collect(true)?,
                        PressureAction::FullGc => self.pressure_collect(false)?,
                        PressureAction::Degrade => {
                            // Memmove-only compaction packs the heap as
                            // tightly as the collector can; whether the
                            // ladder had a rung left or not, collect again.
                            self.collector.pressure_degrade();
                            self.pressure_collect(false)?;
                        }
                        PressureAction::GiveUp => {
                            // `last_action` is the remedy that ran (and
                            // failed to free enough) right before this.
                            return Err(GcError::OutOfMemory { requested, last_action });
                        }
                    }
                    last_action = action.name();
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Run the remedy collection (`minor` falls back to a full cycle for
    /// collectors without a young generation), then return any committed
    /// pages above the compacted top to the frame pool.
    fn pressure_collect(&mut self, minor: bool) -> Result<(), GcError> {
        let minor_result = if minor {
            self.collector
                .collect_minor(self.kernel, &mut self.heap, &mut self.roots)
        } else {
            None
        };
        match minor_result {
            Some(r) => {
                r?;
            }
            None => {
                self.collector
                    .collect(self.kernel, &mut self.heap, &mut self.roots)?;
            }
        }
        self.heap.trim_commit(self.kernel)?;
        self.tier_pass()?;
        Ok(())
    }

    /// Read the tenant's pressure signal after a successful allocation and
    /// run the (edge-triggered) proactive remedy it asks for.
    fn check_pressure_signal(&mut self) -> Result<(), GcError> {
        let p = match self.kernel.vmem.frames.lease() {
            Some(lease) => lease.pressure(),
            None => return Ok(()),
        };
        match self.pressure.on_signal(p) {
            Some(PressureAction::MinorGc) => {
                self.tlab.retire();
                self.pressure_collect(true)
            }
            Some(PressureAction::FullGc) => {
                self.tlab.retire();
                self.pressure_collect(false)
            }
            _ => Ok(()),
        }
    }

    /// Allocate a rooted object whose data words are `seed, seed+1, ...`.
    /// Initialization is bulk (bandwidth-costed); the stamp lets
    /// [`JvmEnv::check_stamped`] verify integrity after any number of GCs.
    pub fn alloc_stamped(
        &mut self,
        shape: ObjShape,
        seed: u64,
    ) -> Result<(RootId, ObjRef), GcError> {
        let obj = self.alloc(shape)?;
        // Stamp first and last words through the costed path, the bulk via
        // one modeled streaming write.
        let words = shape.data_words as u64;
        if words > 0 {
            self.app_cycles +=
                self.heap
                    .write_data(self.kernel, self.core, obj, shape.num_refs as u64, 0, seed)?;
            if words > 1 {
                self.app_cycles += self.heap.write_data(
                    self.kernel,
                    self.core,
                    obj,
                    shape.num_refs as u64,
                    words - 1,
                    seed + words - 1,
                )?;
            }
            self.app_cycles += self
                .kernel
                .bandwidth
                .copy_cycles(&self.kernel.machine, (words - 1).max(1) * 8);
        }
        let rid = self.roots.push(obj);
        Ok((rid, obj))
    }

    /// Verify a stamped object's first/last data words.
    pub fn check_stamped(
        &mut self,
        rid: RootId,
        shape: ObjShape,
        seed: u64,
    ) -> Result<(), String> {
        let obj = self.roots.get(rid);
        if obj.is_null() {
            return Err("root unexpectedly null".into());
        }
        let words = shape.data_words as u64;
        if words == 0 {
            return Ok(());
        }
        let (first, t1) = self
            .heap
            .read_data(self.kernel, self.core, obj, shape.num_refs as u64, 0)
            .map_err(|e| e.to_string())?;
        self.app_cycles += t1;
        if first != seed {
            return Err(format!("first word: got {first}, want {seed}"));
        }
        if words > 1 {
            let (last, t2) = self
                .heap
                .read_data(self.kernel, self.core, obj, shape.num_refs as u64, words - 1)
                .map_err(|e| e.to_string())?;
            self.app_cycles += t2;
            let want = seed + words - 1;
            if last != want {
                return Err(format!("last word: got {last}, want {want}"));
            }
        }
        Ok(())
    }

    /// Model the mutator streaming over `bytes` of an object (compute
    /// kernels reading their arrays): bandwidth-costed, and in instrumented
    /// mode the lines pass through the cache/DTLB simulators.
    pub fn compute_over(&mut self, obj: ObjRef, bytes: u64) {
        self.app_cycles += self
            .kernel
            .bandwidth
            .copy_cycles(&self.kernel.machine, bytes / 2);
        if self.kernel.instrumented() {
            // One TLB lookup + one cache access per line (the hardware
            // event stream; lines within a page naturally hit the TLB).
            for off in (0..bytes).step_by(64) {
                if let Ok((pa, t)) =
                    self.kernel.translate(self.heap.space(), self.core, obj.0 + off)
                {
                    self.app_cycles += t;
                    self.kernel.touch_data_line(pa, AccessKind::Read);
                }
            }
        }
    }

    /// Charge pure compute (no memory traffic).
    pub fn charge_app(&mut self, c: Cycles) {
        self.app_cycles += c;
    }

    /// Mutator reference store through the collector's write barrier.
    /// All workload ref overwrites must go through here: SATB collectors
    /// log the old value (the deletion barrier) before the store lands;
    /// for everything else the barrier is a free no-op, so non-concurrent
    /// runs are byte-identical to the pre-barrier code path.
    pub fn write_ref(&mut self, obj: ObjRef, field: u64, target: ObjRef) -> Result<(), GcError> {
        self.app_cycles +=
            self.collector
                .write_barrier(self.kernel, &mut self.heap, self.core, obj, field)?;
        self.app_cycles += self
            .heap
            .write_ref(self.kernel, self.core, obj, field, target)?;
        Ok(())
    }

    /// Force a GC now (drivers use this for deterministic cycle counts).
    pub fn force_gc(&mut self) -> Result<(), GcError> {
        self.collector
            .collect(self.kernel, &mut self.heap, &mut self.roots)?;
        self.tier_pass()?;
        Ok(())
    }
}
