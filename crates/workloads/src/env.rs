//! The simulated JVM a workload runs in: heap + roots + collector +
//! mutator-time accounting, with GC-on-demand allocation.

use svagc_core::{Collector, GcError};
use svagc_heap::{Heap, HeapError, ObjRef, ObjShape, RootId, RootSet, TlabAllocator};
use svagc_kernel::{CoreId, Kernel};
use svagc_metrics::{AccessKind, Cycles};

/// Upper bound on workload TLAB size (shrunk for small heaps).
const TLAB_BYTES_MAX: u64 = 1 << 20;

/// One running JVM instance.
pub struct JvmEnv<'a> {
    /// The machine this JVM runs on (shared in multi-JVM experiments).
    pub kernel: &'a mut Kernel,
    /// The managed heap.
    pub heap: Heap,
    /// GC roots.
    pub roots: RootSet,
    /// The active collector.
    pub collector: Box<dyn Collector>,
    /// Bidirectional TLAB front-end (§IV's fragmentation fix).
    tlab: TlabAllocator,
    /// Accumulated mutator (application) cycles.
    pub app_cycles: Cycles,
    /// The core mutator work is charged to.
    pub core: CoreId,
}

impl<'a> JvmEnv<'a> {
    /// Wire up an environment.
    pub fn new(
        kernel: &'a mut Kernel,
        heap: Heap,
        collector: Box<dyn Collector>,
    ) -> JvmEnv<'a> {
        let tlab_bytes = (heap.capacity() / 16).clamp(64 << 10, TLAB_BYTES_MAX);
        JvmEnv {
            kernel,
            heap,
            roots: RootSet::new(),
            collector,
            tlab: TlabAllocator::new(tlab_bytes),
            app_cycles: Cycles::ZERO,
            core: CoreId(0),
        }
    }

    /// Allocate through the TLAB front-end, collecting once if the heap is
    /// full. A second failure is a genuine OOM and propagates. The TLAB is
    /// retired before any GC (compaction invalidates its cursors).
    pub fn alloc(&mut self, shape: ObjShape) -> Result<ObjRef, GcError> {
        match self
            .tlab
            .alloc(&mut self.heap, self.kernel, self.core, shape)
        {
            Ok((obj, t)) => {
                self.app_cycles += t;
                Ok(obj)
            }
            Err(HeapError::NeedGc { .. }) => {
                self.tlab.retire();
                self.collector
                    .collect(self.kernel, &mut self.heap, &mut self.roots)?;
                let (obj, t) = self
                    .tlab
                    .alloc(&mut self.heap, self.kernel, self.core, shape)?;
                self.app_cycles += t;
                Ok(obj)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Allocate a rooted object whose data words are `seed, seed+1, ...`.
    /// Initialization is bulk (bandwidth-costed); the stamp lets
    /// [`JvmEnv::check_stamped`] verify integrity after any number of GCs.
    pub fn alloc_stamped(
        &mut self,
        shape: ObjShape,
        seed: u64,
    ) -> Result<(RootId, ObjRef), GcError> {
        let obj = self.alloc(shape)?;
        // Stamp first and last words through the costed path, the bulk via
        // one modeled streaming write.
        let words = shape.data_words as u64;
        if words > 0 {
            self.app_cycles +=
                self.heap
                    .write_data(self.kernel, self.core, obj, shape.num_refs as u64, 0, seed)?;
            if words > 1 {
                self.app_cycles += self.heap.write_data(
                    self.kernel,
                    self.core,
                    obj,
                    shape.num_refs as u64,
                    words - 1,
                    seed + words - 1,
                )?;
            }
            self.app_cycles += self
                .kernel
                .bandwidth
                .copy_cycles(&self.kernel.machine, (words - 1).max(1) * 8);
        }
        let rid = self.roots.push(obj);
        Ok((rid, obj))
    }

    /// Verify a stamped object's first/last data words.
    pub fn check_stamped(
        &mut self,
        rid: RootId,
        shape: ObjShape,
        seed: u64,
    ) -> Result<(), String> {
        let obj = self.roots.get(rid);
        if obj.is_null() {
            return Err("root unexpectedly null".into());
        }
        let words = shape.data_words as u64;
        if words == 0 {
            return Ok(());
        }
        let (first, t1) = self
            .heap
            .read_data(self.kernel, self.core, obj, shape.num_refs as u64, 0)
            .map_err(|e| e.to_string())?;
        self.app_cycles += t1;
        if first != seed {
            return Err(format!("first word: got {first}, want {seed}"));
        }
        if words > 1 {
            let (last, t2) = self
                .heap
                .read_data(self.kernel, self.core, obj, shape.num_refs as u64, words - 1)
                .map_err(|e| e.to_string())?;
            self.app_cycles += t2;
            let want = seed + words - 1;
            if last != want {
                return Err(format!("last word: got {last}, want {want}"));
            }
        }
        Ok(())
    }

    /// Model the mutator streaming over `bytes` of an object (compute
    /// kernels reading their arrays): bandwidth-costed, and in instrumented
    /// mode the lines pass through the cache/DTLB simulators.
    pub fn compute_over(&mut self, obj: ObjRef, bytes: u64) {
        self.app_cycles += self
            .kernel
            .bandwidth
            .copy_cycles(&self.kernel.machine, bytes / 2);
        if self.kernel.instrumented() {
            // One TLB lookup + one cache access per line (the hardware
            // event stream; lines within a page naturally hit the TLB).
            for off in (0..bytes).step_by(64) {
                if let Ok((pa, t)) =
                    self.kernel.translate(self.heap.space(), self.core, obj.0 + off)
                {
                    self.app_cycles += t;
                    self.kernel.touch_data_line(pa, AccessKind::Read);
                }
            }
        }
    }

    /// Charge pure compute (no memory traffic).
    pub fn charge_app(&mut self, c: Cycles) {
        self.app_cycles += c;
    }

    /// Force a GC now (drivers use this for deterministic cycle counts).
    pub fn force_gc(&mut self) -> Result<(), GcError> {
        self.collector
            .collect(self.kernel, &mut self.heap, &mut self.roots)?;
        Ok(())
    }
}
