//! The paper's benchmark workloads and run drivers.
//!
//! * [`spec`] — Table II as data.
//! * [`churn`] — the shared live-set/churn engine.
//! * [`suite`] — SPECjvm2008-style benchmarks configured on the engine
//!   (FFT, Sparse, SOR, LU, Compress, Sigverify, CryptoAES) with the
//!   paper's divided-input variants.
//! * [`bisort`], [`pagerank`], [`parallelsort`], [`lrucache`] — the
//!   structural benchmarks (JOlden tree, Spark graph, merge sort, LRU).
//! * [`mod@env`], [`driver`], [`multijvm`] — the simulated JVM,
//!   single-run driver, and N-instance contention driver.

#![warn(missing_docs)]

pub mod bisort;
pub mod churn;
pub mod driver;
pub mod env;
pub mod lrucache;
pub mod multijvm;
pub mod noisy;
pub mod pagerank;
pub mod parallelsort;
pub mod spec;
pub mod suite;
pub mod workload;

pub use churn::{ChurnSpec, ChurnWorkload, SizeDist};
pub use driver::{run, CollectorKind, FailureKind, RunConfig, RunResult};
pub use env::JvmEnv;
pub use multijvm::{
    isolation_oracle, run_fleet, run_multi, FleetConfig, FleetResult, MultiJvmResult,
    TenantOutcome,
};
pub use noisy::{run_noisy_neighbor, NoisyOutcome, NoisySpec};
pub use spec::{render_table_ii, spec_by_name, BenchSpec, TABLE_II};
pub use workload::Workload;
