//! `LRUCache`: the paper's synthetic memory-bound application (Figs. 2/14).
//!
//! A single-threaded cache of `capacity` entries whose values are
//! log-uniformly sized in `[1 B, max]` (the paper draws from `[1, 2 MB]`
//! with 2 K entries; we scale to 256 entries × `[1 B, 512 KB]`). Every
//! step inserts fresh values and evicts the least-recently-used — constant
//! allocation churn across the whole size spectrum, which is what makes
//! multi-JVM GC interference visible.

use crate::env::JvmEnv;
use crate::workload::Workload;
use std::collections::VecDeque;
use svagc_core::GcError;
use svagc_heap::{ObjRef, ObjShape, RootId};
use svagc_metrics::{Cycles, SimRng};

/// One cached value.
#[derive(Debug, Clone, Copy)]
struct Entry {
    rid: RootId,
    shape: ObjShape,
    seed: u64,
}

/// The LRU cache workload.
pub struct LruCache {
    capacity: usize,
    max_value_bytes: u64,
    inserts_per_step: usize,
    queue: VecDeque<Entry>,
    rng: SimRng,
    next_seed: u64,
}

impl LruCache {
    /// The standard configuration (scaled from the paper's 2 K × 2 MB).
    pub fn standard() -> LruCache {
        LruCache::new(256, 512 << 10, 8, 67)
    }

    /// Custom geometry (multi-JVM sweeps use smaller instances).
    pub fn new(
        capacity: usize,
        max_value_bytes: u64,
        inserts_per_step: usize,
        seed: u64,
    ) -> LruCache {
        LruCache {
            capacity,
            max_value_bytes,
            inserts_per_step,
            queue: VecDeque::new(),
            rng: SimRng::seed_from_u64(seed),
            next_seed: 1,
        }
    }

    fn draw_shape(&mut self) -> ObjShape {
        let (llo, lhi) = (1f64.ln(), (self.max_value_bytes as f64).ln());
        let bytes = self.rng.gen_range(llo..=lhi).exp() as u64;
        ObjShape::data_bytes(bytes.max(1))
    }

    fn insert(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        if self.queue.len() >= self.capacity {
            let victim = self
                .queue
                .pop_front()
                .expect("LRU invariant: a queue at capacity > 0 is non-empty");
            env.roots.set(victim.rid, ObjRef::NULL);
        }
        let shape = self.draw_shape();
        let seed = self.next_seed;
        self.next_seed += 1_000_000;
        let (rid, _) = env.alloc_stamped(shape, seed)?;
        self.queue.push_back(Entry { rid, shape, seed });
        Ok(())
    }
}

impl Workload for LruCache {
    fn name(&self) -> String {
        "LRUCache".into()
    }

    fn threads(&self) -> u32 {
        1
    }

    fn min_heap_bytes(&self) -> u64 {
        // Log-uniform mean ≈ (hi - lo) / ln(hi/lo); add headroom for a
        // burst of inserts.
        let mean = self.max_value_bytes as f64 / (self.max_value_bytes as f64).ln();
        (self.capacity as f64 * mean * 1.35) as u64
            + self.max_value_bytes * 2
            + (256 << 10)
    }

    fn setup(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        for _ in 0..self.capacity {
            self.insert(env)?;
        }
        Ok(())
    }

    fn step(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        for _ in 0..self.inserts_per_step {
            self.insert(env)?;
        }
        // Cache hits: stream whole values (the memory-bound behaviour
        // Figs. 2/14 depend on).
        for _ in 0..self.inserts_per_step * 4 {
            let i = self.rng.gen_range(0..self.queue.len());
            let e = self.queue[i];
            let obj = env.roots.get(e.rid);
            env.compute_over(obj, e.shape.size_bytes());
            // Move to MRU position.
            let e = self
                .queue
                .remove(i)
                .expect("LRU invariant: index was drawn from 0..queue.len()");
            self.queue.push_back(e);
        }
        env.charge_app(Cycles(self.inserts_per_step as u64 * 2_000));
        Ok(())
    }

    fn default_steps(&self) -> usize {
        100
    }

    fn verify(&mut self, env: &mut JvmEnv) -> Result<(), String> {
        for e in self.queue.clone() {
            env.check_stamped(e.rid, e.shape, e.seed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_respected() {
        let mut c = LruCache::new(8, 4096, 2, 1);
        // No env here: only test host-side bookkeeping via min_heap.
        assert!(c.min_heap_bytes() > 8 * 400);
        assert_eq!(c.draw_shape().size_bytes() % 8, 0);
    }
}
