//! Multi-JVM runs: N instances sharing one machine's bandwidth and cores
//! (Figs. 2, 9, 14).
//!
//! Each instance owns its kernel state (address space, TLBs are per-machine
//! but each JVM's GC/mutator activity is confined to its core share), while
//! all instances share one [`BandwidthModel`]: with N registered streams,
//! every byte-copy costs N× its solo bandwidth share — the degradation that
//! makes `memmove`-based GC collapse in Fig. 2 while SVAGC's page-table
//! traffic barely grows (Fig. 14).
//!
//! Instances run host-parallel via `svagc_metrics::par_map` (they are
//! independent simulations; the shared stream count is constant for the
//! whole batch, so results stay deterministic).

use crate::driver::{run, RunConfig, RunResult};
use crate::workload::Workload;
use svagc_metrics::{par_map, BandwidthModel, Cycles};

/// Result of an N-JVM experiment.
#[derive(Debug, Clone)]
pub struct MultiJvmResult {
    /// Instance count.
    pub n: usize,
    /// Per-instance results.
    pub per_jvm: Vec<RunResult>,
}

impl MultiJvmResult {
    /// Mean total GC pause across instances (ms).
    pub fn avg_gc_total_ms(&self) -> f64 {
        self.per_jvm.iter().map(|r| r.gc_total_ms()).sum::<f64>() / self.n as f64
    }

    /// Mean max-pause across instances (ms).
    pub fn avg_gc_max_ms(&self) -> f64 {
        self.per_jvm.iter().map(|r| r.gc_max_ms()).sum::<f64>() / self.n as f64
    }

    /// Mean application wall time (ms), including cross-JVM IPI
    /// interference.
    pub fn avg_app_ms(&self) -> f64 {
        self.per_jvm
            .iter()
            .map(|r| r.app_wall.at_ghz(r.freq_ghz).as_millis())
            .sum::<f64>()
            / self.n as f64
    }

    /// Sum of GC pause time across instances, exact simulated cycles.
    pub fn gc_pause_cycles(&self) -> u64 {
        self.per_jvm.iter().map(|r| r.gc_pause_cycles()).sum()
    }

    /// Sum of total wall time across instances, exact simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.per_jvm.iter().map(|r| r.total_cycles()).sum()
    }

    /// Mean total wall time (ms).
    pub fn avg_total_ms(&self) -> f64 {
        self.per_jvm
            .iter()
            .map(|r| r.total_wall.at_ghz(r.freq_ghz).as_millis())
            .sum::<f64>()
            / self.n as f64
    }
}

/// Run `n` instances of the workload produced by `make` under `base`.
///
/// `make(i)` builds instance `i` (seed it with `i` for variety). The
/// machine's cores are split evenly; all instances contend for bandwidth.
pub fn run_multi<F>(n: usize, make: F, base: &RunConfig) -> Result<MultiJvmResult, String>
where
    F: Fn(usize) -> Box<dyn Workload> + Sync,
{
    assert!(n >= 1);
    let bandwidth = BandwidthModel::new();
    // Each JVM drives several concurrent memory streams (its mutator plus
    // GC copier threads), so register a few streams per instance.
    const STREAMS_PER_JVM: usize = 4;
    let _guards: Vec<_> = (0..n * STREAMS_PER_JVM)
        .map(|_| bandwidth.register())
        .collect();
    let core_share = (base.machine.cores / n).max(1);

    let mut per_jvm: Vec<RunResult> = par_map((0..n).collect::<Vec<_>>(), |i| {
        let mut cfg = base.clone();
        cfg.bandwidth = Some(bandwidth.clone());
        cfg.effective_cores = Some(core_share);
        cfg.asid = (i + 1) as u16;
        // Disjoint affinity bases: instance i's workers pin starting at
        // its own core share, so no two collectors contend for a core
        // while enough cores exist (the scheduler-level regression test is
        // `concurrent_collectors_pin_disjoint_cores`).
        cfg.core_base = i * core_share;
        let mut w = make(i);
        run(w.as_mut(), &cfg)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;

    // Cross-JVM IPI interference: each broadcast lands on all cores; a
    // victim JVM owns ~1/n of them. Charge each instance its share of the
    // *other* instances' interference.
    let total_intf: u64 = per_jvm
        .iter()
        .map(|r| r.gc.total_interference().get())
        .sum();
    for r in per_jvm.iter_mut() {
        let foreign = total_intf - r.gc.total_interference().get();
        let share = Cycles(foreign / n as u64);
        let parallelism = core_share as u64;
        r.app_wall += share / parallelism.max(1);
        r.total_wall += share / parallelism.max(1);
    }

    Ok(MultiJvmResult { n, per_jvm })
}
