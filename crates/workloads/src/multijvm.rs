//! Multi-JVM runs: N instances sharing one machine's bandwidth and cores
//! (Figs. 2, 9, 14), plus the fleet layer that makes one tenant's failure
//! *its own problem* — per-tenant fault domains, quarantine, and the two
//! oracles (isolation, frame-leak) that prove the blast radius held.
//!
//! Each instance owns its kernel state (address space, TLBs are per-machine
//! but each JVM's GC/mutator activity is confined to its core share), while
//! all instances share one [`BandwidthModel`]: with N registered streams,
//! every byte-copy costs N× its solo bandwidth share — the degradation that
//! makes `memmove`-based GC collapse in Fig. 2 while SVAGC's page-table
//! traffic barely grows (Fig. 14).
//!
//! Instances run host-parallel via `svagc_metrics::par_map` (they are
//! independent simulations; the shared stream count is constant for the
//! whole batch, so results stay deterministic). When a fleet runs under a
//! shared [`FramePool`], tenant registration happens *before* the parallel
//! region in index order — the pool's per-tenant namespace bases follow
//! registration order, so this is part of the determinism contract.
//!
//! ## Fault domains and quarantine
//!
//! [`run_fleet`] gives every tenant its own fault domain: its own ASID and
//! address space, its own degrade controller and watchdog (via its
//! [`RunConfig`]), its own WAL epoch namespace, and — under a pool — its
//! own frame quota. A tenant whose run fails is retried up to
//! [`FleetConfig::max_attempts`] times with its frames reclaimed between
//! attempts ([`FramePool::reset_tenant`]); when the attempts are spent the
//! tenant is **quarantined**: its heap is torn down, every frame it owned
//! returns to the pool ([`FramePool::release_tenant`]), and its classified
//! [`FailureKind`] is recorded in the fleet result. The remaining tenants
//! run to completion — [`run_fleet`] returns per-tenant
//! [`TenantOutcome`]s, never one fleet-wide error.

use crate::driver::{run_classified, FailureKind, RunConfig, RunResult};
use crate::workload::Workload;
use svagc_metrics::{par_map, BandwidthModel, Cycles};
use svagc_vmem::{FramePool, TenantId};

/// Result of an N-JVM experiment.
#[derive(Debug, Clone)]
pub struct MultiJvmResult {
    /// Instance count.
    pub n: usize,
    /// Per-instance results.
    pub per_jvm: Vec<RunResult>,
}

impl MultiJvmResult {
    /// Mean total GC pause across instances (ms).
    pub fn avg_gc_total_ms(&self) -> f64 {
        self.per_jvm.iter().map(|r| r.gc_total_ms()).sum::<f64>() / self.n as f64
    }

    /// Mean max-pause across instances (ms).
    pub fn avg_gc_max_ms(&self) -> f64 {
        self.per_jvm.iter().map(|r| r.gc_max_ms()).sum::<f64>() / self.n as f64
    }

    /// Mean application wall time (ms), including cross-JVM IPI
    /// interference.
    pub fn avg_app_ms(&self) -> f64 {
        self.per_jvm
            .iter()
            .map(|r| r.app_wall.at_ghz(r.freq_ghz).as_millis())
            .sum::<f64>()
            / self.n as f64
    }

    /// Sum of GC pause time across instances, exact simulated cycles.
    pub fn gc_pause_cycles(&self) -> u64 {
        self.per_jvm.iter().map(|r| r.gc_pause_cycles()).sum()
    }

    /// Sum of total wall time across instances, exact simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.per_jvm.iter().map(|r| r.total_cycles()).sum()
    }

    /// Mean total wall time (ms).
    pub fn avg_total_ms(&self) -> f64 {
        self.per_jvm
            .iter()
            .map(|r| r.total_wall.at_ghz(r.freq_ghz).as_millis())
            .sum::<f64>()
            / self.n as f64
    }
}

/// Fleet-level isolation knobs layered over a shared [`RunConfig`] base.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total frames of the shared pool (`None` = no pool: tenants keep
    /// private frame allocators, the pre-fleet behavior).
    pub pool_frames: Option<u32>,
    /// Per-tenant frame quota (pooled fleets only).
    pub quota: u32,
    /// Frames of each quota reserved for GC-context charges.
    pub headroom: u32,
    /// Arm the pressure-escalation ladder in every tenant (implies
    /// on-demand heap commit).
    pub pressure: bool,
    /// Run attempts per tenant before quarantine (≥1). Frames are
    /// reclaimed between attempts.
    pub max_attempts: u32,
}

impl FleetConfig {
    /// No pool, no pressure, one attempt — the classic [`run_multi`]
    /// sharing model.
    pub fn unpooled() -> FleetConfig {
        FleetConfig {
            pool_frames: None,
            quota: 0,
            headroom: 0,
            pressure: false,
            max_attempts: 1,
        }
    }

    /// A pooled fleet: `n` tenants × `quota` frames (of which `headroom`
    /// are GC-reserved) out of `pool_frames` total.
    pub fn pooled(pool_frames: u32, quota: u32, headroom: u32) -> FleetConfig {
        FleetConfig {
            pool_frames: Some(pool_frames),
            quota,
            headroom,
            pressure: false,
            max_attempts: 1,
        }
    }

    /// Arm the pressure ladder in every tenant.
    pub fn with_pressure(mut self, on: bool) -> FleetConfig {
        self.pressure = on;
        self
    }

    /// Allow `attempts` runs per tenant before quarantine.
    pub fn with_max_attempts(mut self, attempts: u32) -> FleetConfig {
        self.max_attempts = attempts.max(1);
        self
    }
}

/// What became of one tenant.
#[derive(Debug, Clone)]
pub enum TenantOutcome {
    /// The tenant ran (and verified) to completion.
    Completed(Box<RunResult>),
    /// Every attempt failed; the tenant was quarantined — heap torn down,
    /// frames returned to the pool, failure classified.
    Quarantined {
        /// Classified failure of the final attempt (exit-code contract).
        kind: FailureKind,
        /// Human-readable failure of the final attempt.
        message: String,
        /// Attempts made (== the fleet's `max_attempts`).
        attempts: u32,
        /// Frames the quarantine teardown returned to the pool.
        frames_reclaimed: u32,
    },
}

impl TenantOutcome {
    /// Did the tenant complete?
    pub fn is_completed(&self) -> bool {
        matches!(self, TenantOutcome::Completed(_))
    }

    /// The completed result, if any.
    pub fn result(&self) -> Option<&RunResult> {
        match self {
            TenantOutcome::Completed(r) => Some(r),
            TenantOutcome::Quarantined { .. } => None,
        }
    }

    /// The failure class, if quarantined.
    pub fn failure(&self) -> Option<&FailureKind> {
        match self {
            TenantOutcome::Completed(_) => None,
            TenantOutcome::Quarantined { kind, .. } => Some(kind),
        }
    }
}

/// Result of a fleet run: one outcome per tenant plus the shared pool
/// (when one was configured) for post-run auditing.
#[derive(Debug)]
pub struct FleetResult {
    /// Tenant count.
    pub n: usize,
    /// Per-tenant outcomes, in tenant-index order.
    pub outcomes: Vec<TenantOutcome>,
    /// The shared frame pool, `None` for unpooled fleets.
    pub pool: Option<FramePool>,
}

impl FleetResult {
    /// Completed tenants' results, with their tenant indices.
    pub fn completed(&self) -> Vec<(usize, &RunResult)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.result().map(|r| (i, r)))
            .collect()
    }

    /// How many tenants completed.
    pub fn survivors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_completed()).count()
    }

    /// How many tenants were quarantined.
    pub fn quarantined(&self) -> usize {
        self.n - self.survivors()
    }

    /// The **frame-leak oracle**: audit the pool's ownership map (every
    /// owned frame inside its owner's namespace slice, counters matching
    /// the map, quarantined tenants owning nothing) and require the
    /// pool-wide in-use count to equal the survivors' final footprints
    /// *exactly*. Returns the audited frame count; `Ok(0)` for unpooled
    /// fleets (nothing to leak).
    pub fn frame_leak_oracle(&self) -> Result<u32, String> {
        let Some(pool) = &self.pool else {
            return Ok(0);
        };
        let audited = pool.audit()?;
        let survivors: u32 = self
            .outcomes
            .iter()
            .filter_map(|o| o.result())
            .map(|r| r.frames_in_use)
            .sum();
        let in_use = pool.in_use();
        if audited != in_use {
            return Err(format!(
                "ownership map counts {audited} frame(s) but tenant counters sum to {in_use}"
            ));
        }
        if in_use != survivors {
            return Err(format!(
                "frame leak: pool holds {in_use} charged frame(s) but the survivors' \
                 footprints sum to {survivors}"
            ));
        }
        Ok(in_use)
    }
}

/// The **isolation oracle**: every tenant that survived the `faulty`
/// fleet must have a final heap bit-identical (equal content hash) to the
/// same tenant in the fault-free `clean` fleet — a failing neighbor must
/// not perturb healthy tenants' data by a single bit. Returns how many
/// tenants were compared; comparing zero is an error (a vacuous pass).
pub fn isolation_oracle(faulty: &FleetResult, clean: &FleetResult) -> Result<usize, String> {
    if faulty.n != clean.n {
        return Err(format!(
            "fleet sizes differ: {} faulty vs {} clean",
            faulty.n, clean.n
        ));
    }
    let mut compared = 0;
    for (i, o) in faulty.outcomes.iter().enumerate() {
        let Some(r) = o.result() else { continue };
        let Some(c) = clean.outcomes[i].result() else {
            return Err(format!(
                "tenant {i} survived the faulty fleet but not the fault-free one"
            ));
        };
        if r.heap_hash != c.heap_hash {
            return Err(format!(
                "tenant {i}: heap hash {:#x} under faults != {:#x} fault-free — a \
                 neighbor's failure leaked into a healthy tenant's data",
                r.heap_hash, c.heap_hash
            ));
        }
        compared += 1;
    }
    if compared == 0 {
        return Err("no healthy tenant to compare — the oracle would be vacuous".into());
    }
    Ok(compared)
}

/// Memory streams each JVM registers with the shared bandwidth model (its
/// mutator plus GC copier threads).
const STREAMS_PER_JVM: usize = 4;

/// Run `n` tenants of the workload produced by `make` under `base`,
/// layered with the fleet's isolation knobs. `tweak(i, cfg)` customizes
/// tenant `i`'s config last (chaos harnesses seed faults on victims
/// here). See the module docs for the fault-domain semantics.
pub fn run_fleet<F, T>(
    n: usize,
    make: F,
    base: &RunConfig,
    fleet: &FleetConfig,
    tweak: T,
) -> Result<FleetResult, String>
where
    F: Fn(usize) -> Box<dyn Workload> + Sync,
    T: Fn(usize, RunConfig) -> RunConfig + Sync,
{
    assert!(n >= 1);
    let bandwidth = BandwidthModel::new();
    let _guards: Vec<_> = (0..n * STREAMS_PER_JVM)
        .map(|_| bandwidth.register())
        .collect();
    let core_share = (base.machine.cores / n).max(1);

    // Register every tenant before the parallel region, in index order:
    // namespace bases follow registration order, so admission decisions
    // (and the ownership map) are independent of host scheduling.
    let pool = match fleet.pool_frames {
        Some(total) => {
            let pool = FramePool::new(total);
            for i in 0..n {
                pool.register(TenantId((i + 1) as u16), fleet.quota, fleet.headroom)
                    .map_err(|e| format!("fleet tenant {}: {e}", i + 1))?;
            }
            Some(pool)
        }
        None => None,
    };
    let max_attempts = fleet.max_attempts.max(1);

    let mut outcomes: Vec<TenantOutcome> = par_map((0..n).collect::<Vec<_>>(), |i| {
        let mut cfg = base.clone();
        cfg.bandwidth = Some(bandwidth.clone());
        cfg.effective_cores = Some(core_share);
        cfg.asid = (i + 1) as u16;
        // Disjoint affinity bases: instance i's workers pin starting at
        // its own core share, so no two collectors contend for a core
        // while enough cores exist (the scheduler-level regression test is
        // `concurrent_collectors_pin_disjoint_cores`).
        cfg.core_base = i * core_share;
        if let Some(pool) = &pool {
            cfg.frame_pool = Some(pool.clone());
            cfg.pressure = fleet.pressure;
            // Disjoint WAL epoch namespaces: tenant logs can never be
            // confused during fleet-level forensics.
            cfg.wal_namespace = cfg.asid;
        }
        let cfg = tweak(i, cfg);
        let tenant = TenantId(cfg.asid);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let mut w = make(i);
            match run_classified(w.as_mut(), &cfg) {
                Ok(r) => break TenantOutcome::Completed(Box::new(r)),
                Err(f) => {
                    let is_final = attempt >= max_attempts;
                    // Reclaim the failed attempt's frames: quarantine
                    // (terminal) or reset (registration stays live for the
                    // retry). Only this tenant's namespace slice is touched.
                    let reclaimed = match &pool {
                        Some(p) if is_final => p.release_tenant(tenant).unwrap_or(0),
                        Some(p) => p.reset_tenant(tenant).unwrap_or(0),
                        None => 0,
                    };
                    if is_final {
                        break TenantOutcome::Quarantined {
                            kind: f.kind,
                            message: f.message,
                            attempts: attempt,
                            frames_reclaimed: reclaimed,
                        };
                    }
                }
            }
        }
    });

    // Cross-JVM IPI interference: each broadcast lands on all cores; a
    // victim JVM owns ~1/n of them. Charge each completed instance its
    // share of the *other* instances' interference (a quarantined
    // tenant's torn-down run contributes nothing).
    let total_intf: u64 = outcomes
        .iter()
        .filter_map(|o| o.result())
        .map(|r| r.gc.total_interference().get())
        .sum();
    for o in outcomes.iter_mut() {
        if let TenantOutcome::Completed(r) = o {
            let foreign = total_intf - r.gc.total_interference().get();
            let share = Cycles(foreign / n as u64);
            let parallelism = core_share as u64;
            r.app_wall += share / parallelism.max(1);
            r.total_wall += share / parallelism.max(1);
        }
    }

    Ok(FleetResult { n, outcomes, pool })
}

/// Run `n` instances of the workload produced by `make` under `base`.
///
/// `make(i)` builds instance `i` (seed it with `i` for variety). The
/// machine's cores are split evenly; all instances contend for bandwidth.
///
/// Compatibility wrapper over [`run_fleet`] with the unpooled fleet
/// config: any tenant failure surfaces as the fleet-wide `Err` (the
/// lowest-index failing tenant's message, matching the historical
/// behavior). Fleet harnesses that need per-tenant outcomes call
/// [`run_fleet`] directly.
pub fn run_multi<F>(n: usize, make: F, base: &RunConfig) -> Result<MultiJvmResult, String>
where
    F: Fn(usize) -> Box<dyn Workload> + Sync,
{
    let fleet = run_fleet(n, make, base, &FleetConfig::unpooled(), |_, c| c)?;
    let mut per_jvm = Vec::with_capacity(n);
    for o in fleet.outcomes {
        match o {
            TenantOutcome::Completed(r) => per_jvm.push(*r),
            TenantOutcome::Quarantined { message, .. } => return Err(message),
        }
    }
    Ok(MultiJvmResult { n, per_jvm })
}
