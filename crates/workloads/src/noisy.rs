//! The noisy-neighbor chaos experiment: a pooled fleet where victim
//! tenants are driven into failure while the oracles watch the blast
//! radius.
//!
//! Each tenant runs a heavy-tailed churn workload (a two-point size
//! mixture whose large draws are hundreds of KiB — the allocations that
//! spike committed footprint) under a shared [`FramePool`] sized so the
//! fleet *must* feel pressure: each tenant's quota is a configurable
//! fraction of what its heap would commit eagerly, so tenants only
//! survive by riding the pressure ladder (early GCs, commit trimming,
//! degraded mode). On top of that, the chosen victims get seeded
//! permanent SwapVA faults with a zero fallback budget — the profile that
//! defeats retries and aborts cycles — driving them to quarantine.
//!
//! [`run_noisy_neighbor`] runs the faulty fleet *and* a fault-free twin,
//! then applies both oracles:
//!
//! * the **isolation oracle** — every healthy tenant's final heap is
//!   bit-identical to its fault-free twin's, and
//! * the **frame-leak oracle** — the pool's in-use count equals the
//!   survivors' footprints exactly, with a clean ownership audit.

use crate::churn::{ChurnSpec, ChurnWorkload, SizeDist};
use crate::driver::{CollectorKind, RunConfig};
use crate::multijvm::{isolation_oracle, run_fleet, FleetConfig, FleetResult};
use crate::workload::Workload;
use svagc_core::RetryPolicy;

/// Parameters of one noisy-neighbor experiment.
#[derive(Debug, Clone)]
pub struct NoisySpec {
    /// Fleet size.
    pub tenants: usize,
    /// Victim tenant indices (each gets seeded faults).
    pub victims: Vec<usize>,
    /// Per-swap-request fault probability injected into victims
    /// (permanent, non-retryable modes with a zero fallback budget, so a
    /// high enough rate aborts their cycles).
    pub victim_fault_rate: f64,
    /// Base RNG seed (tenant `i` churns with `seed + i`).
    pub seed: u64,
    /// Steps per tenant.
    pub steps: usize,
    /// Live objects per tenant.
    pub live_objects: usize,
    /// Each tenant's frame quota as a fraction of its eager footprint
    /// (heap pages + slack). Below 1.0 the fleet only survives on the
    /// pressure ladder.
    pub quota_fraction: f64,
    /// Arm the pressure ladder (off = tenants hit raw quota denials).
    pub pressure: bool,
    /// Attempts per tenant before quarantine.
    pub max_attempts: u32,
}

impl NoisySpec {
    /// The default chaos shape: 4 tenants, tenant 0 the victim, pressure
    /// on, one retry before quarantine.
    pub fn standard(victim_fault_rate: f64, seed: u64) -> NoisySpec {
        NoisySpec {
            tenants: 4,
            victims: vec![0],
            victim_fault_rate,
            seed,
            steps: 12,
            live_objects: 220,
            // Tight enough that eager commit overshoots the quota (the
            // ladder must fire), loose enough that the worst tenant's live
            // footprint plus one heavy-tail object (~31 pages) fits under
            // the mutator ceiling — pressure GC can trim committed garbage,
            // but no remedy shrinks the live set itself.
            quota_fraction: 0.88,
            pressure: true,
            max_attempts: 2,
        }
    }
}

/// The heavy-tailed churn workload tenant `i` runs: mostly ~2 KiB
/// objects with a tail of ~120 KiB ones (pushed over the 10-page SwapVA
/// threshold by headers), high churn to make GC frequent.
pub fn noisy_workload(spec: &NoisySpec, i: usize) -> Box<dyn Workload> {
    Box::new(ChurnWorkload::new(ChurnSpec {
        name: format!("noisy-neighbor/t{i}"),
        threads: 4,
        live_objects: spec.live_objects,
        size: SizeDist::Mix {
            small: 2 << 10,
            large: 120 << 10,
            p_large: 0.04,
        },
        refs_per_object: 2,
        alloc_fraction_per_step: 0.30,
        compute_millicycles_per_byte: 40,
        steps: spec.steps,
        seed: spec.seed + i as u64,
    }))
}

/// Everything one noisy-neighbor experiment produced.
#[derive(Debug)]
pub struct NoisyOutcome {
    /// The faulty fleet's per-tenant outcomes.
    pub faulty: FleetResult,
    /// The fault-free twin's outcomes.
    pub clean: FleetResult,
    /// Healthy tenants the isolation oracle compared bit-identical.
    pub isolation_compared: usize,
    /// Frames the leak oracle audited in the faulty pool.
    pub frames_audited: u32,
}

/// Size the fleet's quotas off the workload: the eager footprint of the
/// *worst* tenant's heap in pages (capacity at the driver's 1.05 alignment
/// margin and heap factor, plus the TLAB front-end's reserve), scaled by
/// `quota_fraction`. Tenant `i` churns with `seed + i`, and
/// [`ChurnWorkload`]'s minimum-heap estimate is seed-exact — sizing off
/// tenant 0 alone would starve whichever tenant drew the most heavy-tail
/// objects.
pub fn quota_frames(spec: &NoisySpec, heap_factor: f64) -> (u32, u32) {
    let min_heap = (0..spec.tenants.max(1))
        .map(|i| noisy_workload(spec, i).min_heap_bytes())
        .max()
        .unwrap_or(0);
    let eager_pages = ((min_heap as f64 * 1.05 * heap_factor) / 4096.0).ceil() as u32 + 2;
    let quota = ((eager_pages as f64 * spec.quota_fraction) as u32).max(8);
    // GC headroom: enough for SwapVA side buffers and a minor eden.
    let headroom = (quota / 10).max(4);
    (quota, headroom)
}

/// Run the experiment: the faulty fleet, its fault-free twin, and both
/// oracles. An oracle violation is an `Err` — the harness treats it as a
/// broken blast radius, not a tenant failure.
pub fn run_noisy_neighbor(spec: &NoisySpec, base: &RunConfig) -> Result<NoisyOutcome, String> {
    let (quota, headroom) = quota_frames(spec, base.heap_factor);
    let pool_frames = quota * spec.tenants as u32;
    let fleet = FleetConfig::pooled(pool_frames, quota, headroom)
        .with_pressure(spec.pressure)
        .with_max_attempts(spec.max_attempts);

    let run_one = |faults: bool| {
        run_fleet(
            spec.tenants,
            |i| noisy_workload(spec, i),
            base,
            &fleet,
            |i, mut cfg| {
                if faults && spec.victims.contains(&i) {
                    cfg.fault_rate = spec.victim_fault_rate;
                    cfg.fault_seed = spec.seed ^ 0xBAD_F00D ^ (i as u64);
                    cfg.fault_permanent_only = true;
                    // Zero fallback budget: a permanent fault aborts the
                    // cycle instead of quietly degrading to memmove.
                    cfg.retry =
                        Some(RetryPolicy::default().with_fallback_budget(Some(0)));
                }
                cfg
            },
        )
    };

    let faulty = run_one(true)?;
    let clean = run_one(false)?;

    let isolation_compared = isolation_oracle(&faulty, &clean)
        .map_err(|e| format!("isolation oracle: {e}"))?;
    let frames_audited = faulty
        .frame_leak_oracle()
        .map_err(|e| format!("frame-leak oracle: {e}"))?;
    clean
        .frame_leak_oracle()
        .map_err(|e| format!("frame-leak oracle (fault-free twin): {e}"))?;

    Ok(NoisyOutcome {
        faulty,
        clean,
        isolation_compared,
        frames_audited,
    })
}

/// Pick [`CollectorKind::Svagc`] for a noisy-neighbor run (the chaos
/// experiment exercises the paper's collector; baselines have no SwapVA
/// fault surface to inject into).
pub fn default_collector() -> CollectorKind {
    CollectorKind::Svagc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multijvm::TenantOutcome;
    use crate::FailureKind;

    #[test]
    fn noisy_neighbor_quarantines_the_victim_and_holds_the_blast_radius() {
        let spec = NoisySpec::standard(0.10, 42);
        let base = RunConfig::new(default_collector());
        let out = run_noisy_neighbor(&spec, &base).expect("oracle failure");
        assert_eq!(out.clean.survivors(), spec.tenants, "fault-free twin is clean");
        assert_eq!(out.faulty.survivors(), spec.tenants - 1);
        assert_eq!(out.faulty.quarantined(), 1);
        match &out.faulty.outcomes[0] {
            TenantOutcome::Quarantined { kind, attempts, .. } => {
                assert_eq!(*kind, FailureKind::FaultAbort);
                assert_eq!(*attempts, spec.max_attempts);
            }
            TenantOutcome::Completed(_) => panic!("victim survived 10% permanent faults"),
        }
        assert_eq!(out.isolation_compared, spec.tenants - 1);
        assert!(out.frames_audited > 0, "survivors hold a live footprint");
    }

    #[test]
    fn pressure_keeps_an_under_quota_fleet_alive() {
        // No faults: the pool squeeze alone (quota_fraction < 1) must be
        // survivable via the pressure ladder, and the ladder must actually
        // fire (non-vacuous).
        let spec = NoisySpec {
            victims: vec![],
            ..NoisySpec::standard(0.0, 7)
        };
        let base = RunConfig::new(default_collector());
        let out = run_noisy_neighbor(&spec, &base).expect("oracle failure");
        assert_eq!(out.faulty.survivors(), spec.tenants);
        let remedies: u64 = out
            .faulty
            .completed()
            .iter()
            .map(|(_, r)| {
                r.pressure.denial_remedies + r.pressure.signal_minor_gcs
                    + r.pressure.signal_full_gcs
            })
            .sum();
        assert!(remedies > 0, "quota squeeze never engaged the pressure ladder");
    }
}
