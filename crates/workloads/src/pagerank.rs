//! `PR` (Spark-bench PageRank): random graph + per-iteration rank vectors.
//!
//! The paper uses 78 K nodes / 780 K edges, reproduced at full scale: immutable adjacency blocks
//! (medium objects) plus one large rank array re-allocated every
//! iteration — steady large-object churn against a stable medium-object
//! live set.

use crate::env::JvmEnv;
use crate::workload::Workload;
use svagc_core::GcError;
use svagc_heap::{ObjShape, RootId};
use svagc_metrics::{Cycles, SimRng};

/// Graph nodes (paper scale).
const NODES: u64 = 78_000;
/// Edges (paper scale).
const EDGES: u64 = 780_000;
/// Nodes per adjacency block object.
const BLOCK: u64 = 512;

/// The PageRank workload.
pub struct PageRank {
    rng: SimRng,
    blocks: Vec<(RootId, ObjShape, u64)>,
    ranks: Option<(RootId, ObjShape)>,
    iteration: u64,
}

impl PageRank {
    /// Standard configuration.
    pub fn new() -> PageRank {
        PageRank {
            rng: SimRng::seed_from_u64(61),
            blocks: Vec::new(),
            ranks: None,
            iteration: 0,
        }
    }

    fn rank_shape() -> ObjShape {
        ObjShape::data(NODES as u32)
    }

    fn block_shape() -> ObjShape {
        // Each block stores its nodes' edge targets: EDGES/NODES avg
        // out-degree × BLOCK nodes, one word per edge.
        ObjShape::data(((EDGES / NODES) * BLOCK) as u32)
    }

    fn block_count() -> u64 {
        NODES.div_ceil(BLOCK)
    }
}

impl Default for PageRank {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for PageRank {
    fn name(&self) -> String {
        "PR".into()
    }

    fn threads(&self) -> u32 {
        288
    }

    fn min_heap_bytes(&self) -> u64 {
        Self::block_count() * Self::block_shape().size_bytes()
            + 3 * Self::rank_shape().size_bytes()
            + (256 << 10)
    }

    fn setup(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        for b in 0..Self::block_count() {
            let (rid, obj) = env.alloc_stamped(Self::block_shape(), b * 10_000)?;
            // Fill with random edge targets (real words in simulated
            // memory, verified via the stamp + spot checks).
            let words = Self::block_shape().data_words as u64;
            for w in (1..words - 1).step_by(97) {
                let target = self.rng.gen_range(0..NODES);
                env.app_cycles += env.heap.write_data(env.kernel, env.core, obj, 0, w, target)?;
            }
            // Re-stamp first/last so verify still holds.
            env.app_cycles += env.heap.write_data(env.kernel, env.core, obj, 0, 0, b * 10_000)?;
            env.app_cycles += env.heap.write_data(
                env.kernel,
                env.core,
                obj,
                0,
                words - 1,
                b * 10_000 + words - 1,
            )?;
            self.blocks.push((rid, Self::block_shape(), b * 10_000));
        }
        let (rid, _) = env.alloc_stamped(Self::rank_shape(), 5_000_000)?;
        self.ranks = Some((rid, Self::rank_shape()));
        Ok(())
    }

    fn step(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        self.iteration += 1;
        // New rank vector; the old one becomes garbage.
        let seed = 5_000_000 + self.iteration * 1_000_000;
        let (rid, _) = env.alloc_stamped(Self::rank_shape(), seed)?;
        if let Some((old, _)) = self.ranks.replace((rid, Self::rank_shape())) {
            env.roots.set(old, svagc_heap::ObjRef::NULL);
        }
        // Spark re-caches partitions: a couple of adjacency blocks are
        // rebuilt per iteration, keeping the live set interleaved with
        // garbage (so full compactions really slide objects).
        for _ in 0..2 {
            let i = self.rng.gen_range(0..self.blocks.len());
            let (old, shape, _) = self.blocks[i];
            env.roots.set(old, svagc_heap::ObjRef::NULL);
            let new_seed = 90_000_000 + self.iteration * 1_000 + i as u64 * 7;
            let (new_rid, _) = env.alloc_stamped(shape, new_seed)?;
            self.blocks[i] = (new_rid, shape, new_seed);
        }
        // Rank update streams every adjacency block + both rank vectors.
        for (rid, shape, _) in &self.blocks {
            let obj = env.roots.get(*rid);
            env.compute_over(obj, shape.size_bytes());
        }
        env.charge_app(Cycles(EDGES * 6)); // scatter/gather arithmetic
        // Scratch garbage (message buffers).
        for _ in 0..4 {
            env.alloc(ObjShape::data_bytes(16 << 10))?;
        }
        Ok(())
    }

    fn default_steps(&self) -> usize {
        80
    }

    fn verify(&mut self, env: &mut JvmEnv) -> Result<(), String> {
        for (rid, shape, seed) in &self.blocks.clone() {
            env.check_stamped(*rid, *shape, *seed)?;
        }
        let (rid, shape) = self
            .ranks
            .expect("PageRank invariant: verify only runs after setup allocated the rank vector");
        env.check_stamped(rid, shape, 5_000_000 + self.iteration * 1_000_000)
    }
}
