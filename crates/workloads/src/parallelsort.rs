//! `Parallelsort` (OpenJDK `Arrays.parallelSort` style): merge passes over
//! chunked arrays.
//!
//! The paper sorts 2 M entries; we scale to 1 M (1/2). Each epoch starts
//! from 32 chunks of 32 K entries (256 KB objects) and merges pairwise —
//! every pass allocates half as many, twice-as-large arrays and retires
//! the inputs. Exactly the growing-large-object churn that stresses a
//! sliding compactor.

use crate::env::JvmEnv;
use crate::workload::Workload;
use svagc_core::GcError;
use svagc_heap::{ObjRef, ObjShape, RootId};
use svagc_metrics::Cycles;

/// Entries in the full sort (paper: 2 M, scaled 1/2).
const TOTAL_ENTRIES: u64 = 1 << 20;
/// Initial chunk count per epoch.
const CHUNKS: u64 = 32;

/// The Parallelsort workload.
pub struct ParallelSort {
    /// Current pass's arrays: (root, shape, stamp-seed).
    arrays: Vec<(RootId, ObjShape, u64)>,
    /// Fully merged results of recent epochs, kept live so collections
    /// never see an empty heap at epoch boundaries.
    results: Vec<(RootId, ObjShape, u64)>,
    epoch: u64,
    seed_counter: u64,
}

impl ParallelSort {
    /// Standard configuration.
    pub fn new() -> ParallelSort {
        ParallelSort {
            arrays: Vec::new(),
            results: Vec::new(),
            epoch: 0,
            seed_counter: 0,
        }
    }

    fn chunk_shape(entries: u64) -> ObjShape {
        ObjShape::data(entries as u32)
    }

    fn fresh_epoch(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        // The merged result stays live for a couple of epochs (a consumer
        // is reading it); older results retire.
        self.results.append(&mut self.arrays);
        while self.results.len() > 2 {
            let (rid, _, _) = self.results.remove(0);
            env.roots.set(rid, ObjRef::NULL);
        }
        self.epoch += 1;
        let per_chunk = TOTAL_ENTRIES / CHUNKS;
        for _ in 0..CHUNKS {
            self.seed_counter += 1_000_000;
            let (rid, _) = env.alloc_stamped(Self::chunk_shape(per_chunk), self.seed_counter)?;
            self.arrays.push((rid, Self::chunk_shape(per_chunk), self.seed_counter));
        }
        Ok(())
    }
}

impl Default for ParallelSort {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for ParallelSort {
    fn name(&self) -> String {
        "ParallelSort".into()
    }

    fn threads(&self) -> u32 {
        896
    }

    fn min_heap_bytes(&self) -> u64 {
        // Peak: inputs + outputs of one merge pass, plus two retained
        // epoch results.
        5 * TOTAL_ENTRIES * 8 + (512 << 10)
    }

    fn setup(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        self.fresh_epoch(env)
    }

    fn step(&mut self, env: &mut JvmEnv) -> Result<(), GcError> {
        if self.arrays.len() <= 1 {
            return self.fresh_epoch(env);
        }
        // One merge pass: pairwise combine into double-size arrays.
        let entries_each = self.arrays[0].1.data_words as u64;
        let pairs = self.arrays.len() / 2;
        let mut next = Vec::with_capacity(pairs);
        for p in 0..pairs {
            // Stream both inputs (merge reads).
            for side in 0..2 {
                let (rid, shape, _) = self.arrays[2 * p + side];
                let obj = env.roots.get(rid);
                env.compute_over(obj, shape.size_bytes());
            }
            self.seed_counter += 1_000_000;
            let merged_shape = Self::chunk_shape(entries_each * 2);
            let (rid, _) = env.alloc_stamped(merged_shape, self.seed_counter)?;
            next.push((rid, merged_shape, self.seed_counter));
            // Inputs become garbage.
            for side in 0..2 {
                let (old, _, _) = self.arrays[2 * p + side];
                env.roots.set(old, ObjRef::NULL);
            }
            env.charge_app(Cycles(entries_each * 2 * 8)); // compare+copy
        }
        // Odd leftover carries over.
        if self.arrays.len() % 2 == 1 {
            next.push(
                *self
                    .arrays
                    .last()
                    .expect("merge invariant: an odd-length array list has a last element"),
            );
        }
        self.arrays = next;
        Ok(())
    }

    fn default_steps(&self) -> usize {
        60
    }

    fn verify(&mut self, env: &mut JvmEnv) -> Result<(), String> {
        for (rid, shape, seed) in self.arrays.iter().chain(&self.results).copied().collect::<Vec<_>>() {
            env.check_stamped(rid, shape, seed)?;
        }
        Ok(())
    }
}
