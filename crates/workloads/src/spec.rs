//! Table II: benchmark configurations.
//!
//! The paper runs on 192 GB machines with heaps up to 85.8 GiB; this
//! reproduction scales every benchmark's *capacity* down to laptop size
//! while preserving what drives the results — the object-size
//! distributions (64 KB FFT arrays, 50 KB sparse rows, 1-100 MiB Sigverify
//! buffers, [1 B, 2 MB] LRU values, …), the live/garbage churn ratios, and
//! the 1.2×/2× heap-size factors. The scale factor of each workload is
//! recorded in EXPERIMENTS.md.

use svagc_metrics::impl_to_json;

/// One row of Table II plus reproduction scaling notes.
#[derive(Debug, Clone, Copy)]
pub struct BenchSpec {
    /// Benchmark name as the paper prints it.
    pub name: &'static str,
    /// Originating suite.
    pub suite: &'static str,
    /// Mutator thread count (Table II).
    pub threads: u32,
    /// Paper heap range in GiB (1.2× .. 2× minimum).
    pub heap_gib: (f64, f64),
}

impl_to_json!(BenchSpec { name, suite, threads, heap_gib });

/// All Table II rows, in paper order.
pub const TABLE_II: [BenchSpec; 11] = [
    BenchSpec { name: "FFT.large", suite: "SPECjvm2008", threads: 576, heap_gib: (19.2, 40.0) },
    BenchSpec { name: "Sparse.large", suite: "SPECjvm2008", threads: 576, heap_gib: (5.0, 8.5) },
    BenchSpec { name: "SOR.large", suite: "SPECjvm2008", threads: 32, heap_gib: (51.5, 85.8) },
    BenchSpec { name: "LU.large", suite: "SPECjvm2008", threads: 224, heap_gib: (3.0, 5.0) },
    BenchSpec { name: "Compress", suite: "SPECjvm2008", threads: 640, heap_gib: (19.0, 32.0) },
    BenchSpec { name: "Sigverify", suite: "SPECjvm2008", threads: 256, heap_gib: (28.0, 56.7) },
    BenchSpec { name: "CryptoAES", suite: "SPECjvm2008", threads: 96, heap_gib: (5.2, 8.67) },
    BenchSpec { name: "PageRank (PR)", suite: "Spark", threads: 288, heap_gib: (4.0, 6.5) },
    BenchSpec { name: "Bisort", suite: "JOlden", threads: 896, heap_gib: (8.0, 19.2) },
    BenchSpec { name: "Parallelsort", suite: "OpenJDK", threads: 896, heap_gib: (16.0, 50.0) },
    BenchSpec { name: "LRUCache", suite: "-", threads: 1, heap_gib: (4.5, 4.5) },
];

/// Look a spec up by (paper) name.
pub fn spec_by_name(name: &str) -> Option<&'static BenchSpec> {
    TABLE_II.iter().find(|s| s.name == name)
}

/// Render Table II as aligned text.
pub fn render_table_ii() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<15} {:<12} {:>8} {:>14}",
        "Benchmark", "Suite", "Threads", "Heap (GiB)"
    );
    for s in TABLE_II {
        let _ = writeln!(
            out,
            "{:<15} {:<12} {:>8} {:>6.1} - {:<5.1}",
            s.name, s.suite, s.threads, s.heap_gib.0, s.heap_gib.1
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_eleven_rows() {
        assert_eq!(TABLE_II.len(), 11);
    }

    #[test]
    fn lookup_by_name() {
        let s = spec_by_name("Sigverify").unwrap();
        assert_eq!(s.threads, 256);
        assert!(spec_by_name("nope").is_none());
    }

    #[test]
    fn heap_ranges_are_ordered() {
        for s in TABLE_II {
            assert!(s.heap_gib.0 <= s.heap_gib.1, "{}", s.name);
        }
    }

    #[test]
    fn table_renders() {
        let t = render_table_ii();
        assert_eq!(t.lines().count(), 12);
        assert!(t.contains("LRUCache"));
    }
}
