//! The SPECjvm2008-style benchmarks, configured on the churn engine.
//!
//! Size profiles follow the paper and its cited characterization study
//! (Lengauer et al., ICPE'17): FFT averages 64 KB arrays, Sparse ~50 KB
//! rows (with a heavy tail — divided variants push much of the mass below
//! the 10-page threshold, which is why their gains shrink), Sigverify is
//! modified to few-but-huge buffers, CryptoAES is compute-bound. Live-set
//! *counts* are scaled laptop-size (documented in EXPERIMENTS.md); the
//! distributions and churn ratios are the paper's.

use crate::churn::{ChurnSpec, ChurnWorkload, SizeDist};
use crate::workload::Workload;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

fn churn(
    name: &str,
    threads: u32,
    live_objects: usize,
    size: SizeDist,
    refs: u32,
    compute_milli: u64,
    seed: u64,
) -> ChurnWorkload {
    ChurnWorkload::new(ChurnSpec {
        name: name.to_string(),
        threads,
        live_objects,
        size,
        refs_per_object: refs,
        alloc_fraction_per_step: 0.02,
        compute_millicycles_per_byte: compute_milli,
        steps: 80,
        seed,
    })
}

/// `FFT.large` and its divided-input variants (`denom` ∈ {1, 8, 16}).
/// A few megabyte-scale signal arrays over many small temporaries (the
/// 64 KB *average* hides the tail): the best case for SwapVA. Divided
/// inputs shrink the arrays toward the threshold and the benefit fades
/// (Fig. 11).
pub fn fft(denom: u64) -> ChurnWorkload {
    let name = match denom {
        1 => "FFT.large".to_string(),
        d => format!("FFT.large/{d}"),
    };
    churn(
        &name,
        576,
        1600,
        SizeDist::Mix {
            small: 8 * KB,
            large: MB / denom,
            p_large: 0.05,
        },
        1,
        2_000,
        11 + denom,
    )
}

/// `Sparse.large` (SpMV) and divided variants (`denom` ∈ {1, 2, 4}):
/// numerous rows with a heavy tail around a ~50 KB mean.
pub fn sparse(denom: u64) -> ChurnWorkload {
    let name = match denom {
        1 => "Sparse.large".to_string(),
        d => format!("Sparse.large/{d}"),
    };
    churn(
        &name,
        576,
        1200,
        SizeDist::Mix {
            small: 6 * KB,
            large: 180 * KB / denom,
            p_large: 0.25,
        },
        2,
        300,
        23 + denom,
    )
}

/// `SOR.large` (`x10 = false`) and the 10×-input variant: successive
/// over-relaxation over big matrix rows; memory-bound.
pub fn sor(x10: bool) -> ChurnWorkload {
    if x10 {
        churn("SOR.large x10", 32, 160, SizeDist::Fixed(640 * KB), 1, 300, 31)
    } else {
        churn("SOR.large", 32, 1200, SizeDist::Fixed(64 * KB), 1, 300, 37)
    }
}

/// `LU.large`: blocked matrix factorization tiles.
pub fn lu() -> ChurnWorkload {
    churn("LU.large", 224, 1200, SizeDist::Fixed(48 * KB), 1, 1_500, 41)
}

/// `Compress`: input/output buffers with small temporaries.
pub fn compress() -> ChurnWorkload {
    churn(
        "Compress",
        640,
        1200,
        SizeDist::Mix {
            small: 4 * KB,
            large: 128 * KB,
            p_large: 0.35,
        },
        1,
        800,
        43,
    )
}

/// `Sigverify` with the paper's modified object sizes. `size_class` ∈
/// {0: default 1 MiB, 1: "10 MiB" (scaled 4 MiB), 2: "100 MiB" (scaled
/// 16 MiB)} — few, huge buffers: SwapVA's best case (97 % pause cut).
pub fn sigverify(size_class: usize) -> ChurnWorkload {
    let (name, size, live) = match size_class {
        0 => ("Sigverify", MB, 64),
        1 => ("Sigverify-10M", 4 * MB, 16),
        _ => ("Sigverify-100M", 16 * MB, 8),
    };
    churn(name, 256, live, SizeDist::Fixed(size), 0, 400, 47)
}

/// `CryptoAES`: compute-bound with mostly small/medium buffers — the
/// smallest app-throughput gain in Fig. 15 (+15.2 %).
pub fn cryptoaes() -> ChurnWorkload {
    churn(
        "CryptoAES",
        96,
        2000,
        SizeDist::Mix {
            small: 2 * KB,
            large: 64 * KB,
            p_large: 0.15,
        },
        1,
        6_000,
        53,
    )
}

/// The Fig. 11/15 benchmark list: every workload, default variants first.
pub fn standard_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(fft(1)),
        Box::new(fft(8)),
        Box::new(fft(16)),
        Box::new(sparse(1)),
        Box::new(sparse(2)),
        Box::new(sparse(4)),
        Box::new(sor(false)),
        Box::new(sor(true)),
        Box::new(lu()),
        Box::new(compress()),
        Box::new(sigverify(0)),
        Box::new(cryptoaes()),
        Box::new(crate::pagerank::PageRank::new()),
        Box::new(crate::bisort::Bisort::new()),
        Box::new(crate::parallelsort::ParallelSort::new()),
    ]
}

/// Build one workload by its display name (harness CLI).
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    let w: Box<dyn Workload> = match name {
        "FFT.large" => Box::new(fft(1)),
        "FFT.large/8" => Box::new(fft(8)),
        "FFT.large/16" => Box::new(fft(16)),
        "Sparse.large" => Box::new(sparse(1)),
        "Sparse.large/2" => Box::new(sparse(2)),
        "Sparse.large/4" => Box::new(sparse(4)),
        "SOR.large" => Box::new(sor(false)),
        "SOR.large x10" => Box::new(sor(true)),
        "LU.large" => Box::new(lu()),
        "Compress" => Box::new(compress()),
        "Sigverify" => Box::new(sigverify(0)),
        "Sigverify-10M" => Box::new(sigverify(1)),
        "Sigverify-100M" => Box::new(sigverify(2)),
        "CryptoAES" => Box::new(cryptoaes()),
        "PR" => Box::new(crate::pagerank::PageRank::new()),
        "Bisort" => Box::new(crate::bisort::Bisort::new()),
        "ParallelSort" => Box::new(crate::parallelsort::ParallelSort::new()),
        "LRUCache" => Box::new(crate::lrucache::LruCache::standard()),
        _ => return None,
    };
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_distinct() {
        let suite = standard_suite();
        let mut names: Vec<String> = suite.iter().map(|w| w.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn divided_variants_shrink_min_heap() {
        assert!(fft(1).min_heap_bytes() > fft(8).min_heap_bytes());
        assert!(sparse(1).min_heap_bytes() > sparse(4).min_heap_bytes());
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["FFT.large", "Sigverify", "LRUCache", "PR"] {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("bogus").is_none());
    }

    #[test]
    fn sigverify_sizes_escalate() {
        assert!(sigverify(2).min_heap_bytes() > sigverify(0).min_heap_bytes());
    }
}
