//! The workload interface drivers run.

use crate::env::JvmEnv;
use svagc_core::GcError;

/// A benchmark program: sets up a live data set, then mutates/allocates in
/// steps, and can verify its data integrity at any point.
pub trait Workload {
    /// Display name (with variant suffix, e.g. `FFT.large/8`).
    fn name(&self) -> String;

    /// Mutator thread count (Table II) — determines how much hardware
    /// parallelism the app time model divides by.
    fn threads(&self) -> u32;

    /// Minimum heap this workload needs (the paper's "minimum required
    /// size" that 1.2×/2× factors multiply).
    fn min_heap_bytes(&self) -> u64;

    /// Build the initial live set.
    fn setup(&mut self, env: &mut JvmEnv) -> Result<(), GcError>;

    /// One unit of mutator work (allocation churn + modeled compute).
    fn step(&mut self, env: &mut JvmEnv) -> Result<(), GcError>;

    /// Steps in a standard run.
    fn default_steps(&self) -> usize;

    /// Verify live-data integrity (catches GC corruption mid-benchmark).
    fn verify(&mut self, env: &mut JvmEnv) -> Result<(), String>;
}
