//! End-to-end driver runs: each collector executes real workloads, GC
//! actually triggers, data survives, and the paper's headline orderings
//! hold on the simulated machine.

use svagc_workloads::driver::{run, CollectorKind, RunConfig};
use svagc_workloads::suite;

fn cfg(kind: CollectorKind) -> RunConfig {
    let mut c = RunConfig::new(kind);
    c.gc_threads = 8;
    c
}

#[test]
fn sigverify_svagc_vs_memmove_headline() {
    // Paper: Sigverify's GC pause drops ~97% with SwapVA.
    let mut w1 = suite::by_name("Sigverify").unwrap();
    let r_swap = run(w1.as_mut(), &cfg(CollectorKind::Svagc)).unwrap();
    let mut w2 = suite::by_name("Sigverify").unwrap();
    let r_move = run(w2.as_mut(), &cfg(CollectorKind::SvagcMemmove)).unwrap();

    assert!(r_swap.verify_ok && r_move.verify_ok);
    assert!(r_swap.gc.count() >= 2, "GC must trigger ({})", r_swap.gc.count());
    assert!(r_move.gc.count() >= 2);
    assert!(
        r_swap.gc_total_ms() < r_move.gc_total_ms() * 0.25,
        "SwapVA should cut Sigverify GC time by >75% (swap {:.2} ms vs move {:.2} ms)",
        r_swap.gc_total_ms(),
        r_move.gc_total_ms()
    );
    // Zero-copy: SVAGC's compaction hardly copies bytes.
    assert!(r_swap.perf.bytes_copied < r_move.perf.bytes_copied / 10);
}

#[test]
fn small_object_workload_gains_little() {
    // Bisort is all small objects: SwapVA should barely matter.
    let mut w1 = suite::by_name("Bisort").unwrap();
    let r_swap = run(w1.as_mut(), &cfg(CollectorKind::Svagc)).unwrap();
    let mut w2 = suite::by_name("Bisort").unwrap();
    let r_move = run(w2.as_mut(), &cfg(CollectorKind::SvagcMemmove)).unwrap();
    assert!(r_swap.verify_ok && r_move.verify_ok);
    let ratio = r_swap.gc_total_ms() / r_move.gc_total_ms().max(1e-9);
    assert!(
        ratio > 0.7,
        "Bisort should see <30% GC-time change, got ratio {ratio:.3}"
    );
}

#[test]
fn baselines_run_and_rank_correctly() {
    // Fig. 12 ordering on a large-object workload:
    // SVAGC < ParallelGC < Shenandoah in average Full-GC latency.
    let mut results = Vec::new();
    for kind in [
        CollectorKind::Svagc,
        CollectorKind::ParallelGc,
        CollectorKind::Shenandoah,
    ] {
        let mut w = suite::by_name("SOR.large").unwrap();
        let r = run(w.as_mut(), &cfg(kind)).unwrap();
        assert!(r.verify_ok, "{} verify", r.collector);
        assert!(r.gc.count() >= 1, "{} must GC", r.collector);
        results.push(r);
    }
    let (svagc, pgc, shen) = (&results[0], &results[1], &results[2]);
    assert!(
        svagc.gc_avg_ms() < pgc.gc_avg_ms(),
        "SVAGC {:.2} ms should beat ParallelGC {:.2} ms",
        svagc.gc_avg_ms(),
        pgc.gc_avg_ms()
    );
    assert!(
        pgc.gc_avg_ms() < shen.gc_avg_ms(),
        "ParallelGC {:.2} ms should beat Shenandoah {:.2} ms",
        pgc.gc_avg_ms(),
        shen.gc_avg_ms()
    );
}

#[test]
fn bigger_heap_means_fewer_gcs() {
    let mut w1 = suite::by_name("Compress").unwrap();
    let mut c1 = cfg(CollectorKind::Svagc);
    c1.heap_factor = 1.2;
    let tight = run(w1.as_mut(), &c1).unwrap();
    let mut w2 = suite::by_name("Compress").unwrap();
    let mut c2 = cfg(CollectorKind::Svagc);
    c2.heap_factor = 2.0;
    let roomy = run(w2.as_mut(), &c2).unwrap();
    assert!(tight.gc.count() > roomy.gc.count());
    assert!(roomy.gc.count() >= 1, "2x heap must still GC at least once");
}

#[test]
fn structural_workloads_survive_gc() {
    for name in ["PR", "ParallelSort", "LRUCache"] {
        let mut w = suite::by_name(name).unwrap();
        let r = run(w.as_mut(), &cfg(CollectorKind::Svagc)).unwrap();
        assert!(r.verify_ok, "{name} verify failed");
        assert!(r.gc.count() >= 1, "{name} never triggered GC");
    }
}

#[test]
fn runs_are_deterministic() {
    let go = || {
        let mut w = suite::by_name("Sparse.large/4").unwrap();
        run(w.as_mut(), &cfg(CollectorKind::Svagc)).unwrap()
    };
    let a = go();
    let b = go();
    assert_eq!(a.gc.total_pause(), b.gc.total_pause());
    assert_eq!(a.app_cycles, b.app_cycles);
    assert_eq!(a.perf, b.perf);
}
