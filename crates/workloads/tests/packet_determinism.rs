//! Packet-scheduler determinism: the virtual-time schedule is a pure
//! function of the workload and the GC config. Host parallelism
//! (`SVAGC_HOST_THREADS`) only changes how fast the simulation runs on the
//! host — the per-run heap image, pause cycles, and `gc.sched.*` counters
//! must be bit-identical across host-thread counts and across repeated
//! runs. All runs happen inside this one test function so the env-var
//! mutations cannot race another test in this binary.

use svagc_core::SchedulerKind;
use svagc_workloads::driver::{run, CollectorKind, RunConfig, RunResult};
use svagc_workloads::multijvm::run_multi;
use svagc_workloads::suite;

fn packets_cfg() -> RunConfig {
    let mut c = RunConfig::new(CollectorKind::Svagc).with_scheduler(SchedulerKind::Packets);
    c.gc_threads = 8;
    c
}

/// Everything in a run that the scheduler could perturb, collapsed to an
/// exactly comparable tuple.
fn fingerprint(r: &RunResult) -> (u64, u64, u64, u64, u64) {
    (
        r.heap_hash,
        r.gc.total_pause().get(),
        r.gc.total_sched_packets(),
        r.gc.total_sched_steals(),
        r.app_cycles.get(),
    )
}

#[test]
fn packet_schedule_bit_identical_across_host_threads_and_reruns() {
    let single = || {
        let mut w = suite::by_name("Sparse.large/4").unwrap();
        run(w.as_mut(), &packets_cfg()).unwrap()
    };
    let multi = || {
        run_multi(
            2,
            |_i| suite::by_name("Sparse.large/4").unwrap(),
            &packets_cfg(),
        )
        .unwrap()
    };

    std::env::set_var("SVAGC_HOST_THREADS", "1");
    let s_seq = single();
    let s_seq_again = single();
    let m_seq = multi();
    std::env::set_var("SVAGC_HOST_THREADS", "4");
    let s_par = single();
    let m_par = multi();
    std::env::remove_var("SVAGC_HOST_THREADS");

    // The packet scheduler actually ran and overlapped work.
    assert!(
        s_seq.gc.total_sched_packets() > 0,
        "no packets executed — scheduler flag not honored?"
    );

    // Repeated runs at a fixed host-thread count are bit-identical.
    assert_eq!(fingerprint(&s_seq), fingerprint(&s_seq_again));

    // Host-thread count is invisible to the virtual-time schedule.
    assert_eq!(fingerprint(&s_seq), fingerprint(&s_par));

    // Multi-JVM fan-out goes through `par_map`, the one place host threads
    // genuinely execute simulations concurrently: every instance must still
    // match its serial twin exactly, in order.
    assert_eq!(m_seq.per_jvm.len(), m_par.per_jvm.len());
    for (i, (a, b)) in m_seq.per_jvm.iter().zip(&m_par.per_jvm).enumerate() {
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "instance {i} diverged between host_threads=1 and 4"
        );
    }
}
