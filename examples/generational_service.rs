//! A request-serving workload on the generational heap: session buffers
//! die young in eden, cache entries survive and get promoted — minor GCs
//! stay tiny while the occasional full GC compacts the old generation.
//! Large survivors are promoted by PTE swap (Table I, row 2).
//!
//! ```text
//! cargo run --release --example generational_service
//! ```

use svagc::gc::{full_collect_generational, GcConfig, GcError, Lisp2Collector, MinorConfig, MinorGc};
use svagc::heap::{GenHeap, HeapError, ObjRef, ObjShape, RootSet};
use svagc::kernel::{CoreId, Kernel};
use svagc::metrics::MachineConfig;
use svagc::vmem::{Asid, PAGE_SIZE};

const CORE: CoreId = CoreId(0);

fn main() {
    let mut kernel = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 160 << 20);
    let mut gh = GenHeap::new(&mut kernel, Asid(1), 24 << 20, 8 << 20, 10).unwrap();
    let mut roots = RootSet::new();
    let mut minor = MinorGc::new(MinorConfig::svagc(8));
    let mut full = Lisp2Collector::new(GcConfig::svagc(8));

    // Long-lived "cache": slots that hold promoted response buffers.
    let mut cache: Vec<Option<(svagc::heap::RootId, u64)>> = vec![None; 256];
    let mut seq = 0u64;
    let mut fulls = 0usize;

    for request in 0..12_000u64 {
        // Each request allocates short-lived session state in eden...
        let scratch = alloc_young(&mut kernel, &mut gh, &mut minor, &mut full, &mut roots,
            ObjShape::data(96), seq);
        let _ = scratch;
        seq += 1;
        // ...and every 8th builds a large response buffer that gets cached
        // (it will survive the next scavenge and be promoted by SwapVA).
        if request % 8 == 0 {
            let big = ObjShape::data_bytes(12 * PAGE_SIZE);
            let obj = alloc_young(&mut kernel, &mut gh, &mut minor, &mut full, &mut roots,
                big, seq);
            seq += 1;
            let slot = (request / 8) as usize % cache.len();
            if let Some((old, _)) = cache[slot].replace((roots.push(obj), seq - 1)) {
                roots.set(old, ObjRef::NULL); // evict
            }
        }
        // Count full GCs triggered by old-gen pressure.
        fulls = full.log.count();
    }

    let f = kernel.machine.freq_ghz;
    let minor_avg: f64 = minor
        .log
        .iter()
        .map(|s| s.pause.at_ghz(f).as_micros())
        .sum::<f64>()
        / minor.log.len().max(1) as f64;
    println!("requests served  : 12000");
    println!(
        "minor GCs        : {} (avg pause {:.1} us)",
        minor.log.len(),
        minor_avg
    );
    println!(
        "promoted         : {} objects, {} by PTE swap",
        minor.log.iter().map(|s| s.promoted_objects).sum::<u64>(),
        minor.log.iter().map(|s| s.swapped_objects).sum::<u64>(),
    );
    println!(
        "dead in eden     : {} objects (never copied at all)",
        minor.log.iter().map(|s| s.dead_young).sum::<u64>(),
    );
    println!(
        "full GCs         : {fulls} (avg pause {:.1} us)",
        full.log.avg_pause().at_ghz(f).as_micros()
    );

    // Verify the cache contents survived all of it (entries cached since
    // the last scavenge are still young; everything older was promoted).
    let (mut old_gen, mut young) = (0, 0);
    for entry in cache.iter().flatten() {
        let (rid, _) = entry;
        let obj = roots.get(*rid);
        assert!(gh.in_old(obj.0) || gh.in_young(obj.0));
        if gh.in_old(obj.0) {
            old_gen += 1;
        } else {
            young += 1;
        }
    }
    println!("cache entries    : {old_gen} promoted + {young} still young, all intact");
}

/// Allocate young; on eden exhaustion scavenge, on promotion failure run a
/// full collection of the old generation and retry.
fn alloc_young(
    kernel: &mut Kernel,
    gh: &mut GenHeap,
    minor: &mut MinorGc,
    full: &mut Lisp2Collector,
    roots: &mut RootSet,
    shape: ObjShape,
    seed: u64,
) -> ObjRef {
    loop {
        match gh.alloc_young(kernel, CORE, shape) {
            Ok((obj, _)) => {
                gh.old
                    .write_data(kernel, CORE, obj, shape.num_refs as u64, 0, seed)
                    .unwrap();
                return obj;
            }
            Err(HeapError::NeedGc { .. }) => match minor.collect(kernel, gh, roots) {
                Ok(_) => {}
                Err(GcError::Heap(HeapError::NeedGc { .. })) => {
                    full_collect_generational(kernel, gh, roots, full).expect("full GC");
                }
                Err(e) => panic!("{e}"),
            },
            Err(e) => panic!("{e}"),
        }
    }
}
