//! Multi-JVM scalability demo (the Fig. 2 vs Fig. 14 contrast).
//!
//! Runs N concurrent LRU-cache JVMs on one modeled 32-core machine under
//! ParallelGC and under SVAGC, and prints how per-JVM GC time and
//! application time degrade as instances multiply. `memmove`-based GC
//! collapses with contended bandwidth; SVAGC's page-table-only compaction
//! barely notices.
//!
//! ```text
//! cargo run --release --example multi_jvm_lru
//! ```

use svagc::workloads::driver::{CollectorKind, RunConfig};
use svagc::workloads::lrucache::LruCache;
use svagc::workloads::multijvm::run_multi;
use svagc::metrics::MachineConfig;

fn sweep(kind: CollectorKind) {
    println!("\n== {} ==", kind.label());
    println!(
        "{:>5} {:>16} {:>14} {:>14}",
        "JVMs", "GC total (ms)", "GC max (ms)", "app (ms)"
    );
    let mut first: Option<(f64, f64)> = None;
    for n in [1usize, 4, 16, 32] {
        let mut base = RunConfig::new(kind);
        base.machine = MachineConfig::xeon_gold_6130();
        base.gc_threads = 4;
        let res = run_multi(
            n,
            |i| Box::new(LruCache::new(192, 2 << 20, 8, 500 + i as u64)),
            &base,
        )
        .expect("multi-JVM run");
        println!(
            "{n:>5} {:>16.3} {:>14.3} {:>14.2}",
            res.avg_gc_total_ms(),
            res.avg_gc_max_ms(),
            res.avg_app_ms()
        );
        match first {
            None => first = Some((res.avg_gc_total_ms(), res.avg_app_ms())),
            Some((gc1, app1)) if n == 32 => println!(
                "    -> 1 to 32 JVMs: GC time x{:.2}, app time x{:.2}",
                res.avg_gc_total_ms() / gc1,
                res.avg_app_ms() / app1
            ),
            _ => {}
        }
    }
}

fn main() {
    println!("LRU cache x N JVMs on a 32-core dual Xeon Gold 6130, 4 GC threads each");
    sweep(CollectorKind::ParallelGc);
    sweep(CollectorKind::Svagc);
    println!("\n(paper: ParallelGC degrades steeply — Fig. 2; SVAGC's GC time grows ~52%\n while app time grows ~327% at 32 JVMs — Fig. 14)");
}
