//! Quickstart: build a simulated machine, allocate objects on a managed
//! heap, trigger a full SVAGC collection, and watch large objects move by
//! PTE swapping instead of byte copying.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use svagc::gc::{GcConfig, Lisp2Collector};
use svagc::heap::{Heap, HeapConfig, ObjShape, RootSet};
use svagc::kernel::{CoreId, Kernel};
use svagc::metrics::MachineConfig;
use svagc::vmem::{Asid, PAGE_SIZE};

fn main() {
    // A modeled dual Xeon Gold 6130 (the paper's main testbed) with 256 MiB
    // of simulated DRAM.
    let machine = MachineConfig::xeon_gold_6130();
    let mut kernel = Kernel::with_bytes(machine, 256 << 20);

    // A 128 MiB heap with the paper's 10-page swapping threshold.
    let mut heap = Heap::new(&mut kernel, Asid(1), HeapConfig::new(128 << 20)).unwrap();
    let mut roots = RootSet::new();
    let core = CoreId(0);

    // Allocate a mix of objects; keep every third alive via a root.
    println!("allocating 600 objects (every 6th is a 1 MiB 'large' object)...");
    for i in 0..600u64 {
        let shape = if i % 6 == 0 {
            ObjShape::data_bytes(1 << 20) // 1 MiB: 256 pages >= threshold
        } else {
            ObjShape::data_bytes(2_000)
        };
        let (obj, _) = heap.alloc(&mut kernel, core, shape).unwrap();
        // Stamp the first data word so we can verify it after compaction.
        heap.write_data(&mut kernel, core, obj, 0, 0, 0xC0FFEE00 + i)
            .unwrap();
        if i % 3 == 0 {
            roots.push(obj);
        }
    }
    println!(
        "heap used: {:.1} MiB of {:.1} MiB",
        heap.used_bytes() as f64 / (1 << 20) as f64,
        heap.capacity() as f64 / (1 << 20) as f64
    );

    // Collect with full SVAGC (SwapVA + aggregation + PMD caching +
    // Algorithm 4's pinned shootdown), 8 GC workers.
    let mut gc = Lisp2Collector::new(GcConfig::svagc(8));
    let stats = gc.collect(&mut kernel, &mut heap, &mut roots).unwrap();

    println!("\n--- GC cycle ---");
    println!("live objects     : {}", stats.live_objects);
    println!("reclaimed objects: {}", stats.dead_objects);
    println!(
        "moved            : {} objects ({} by PTE swap)",
        stats.moved_objects, stats.swapped_objects
    );
    println!(
        "bytes swapped    : {:.1} MiB (zero copies!)",
        stats.swapped_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "bytes memmoved   : {:.1} KiB",
        stats.memmove_bytes as f64 / 1024.0
    );
    let f = kernel.machine.freq_ghz;
    println!("pause            : {}", stats.pause().at_ghz(f));
    println!(
        "  mark {} | forward {} | adjust {} | compact {}",
        stats.phases.mark.at_ghz(f),
        stats.phases.forward.at_ghz(f),
        stats.phases.adjust.at_ghz(f),
        stats.phases.compact_total().at_ghz(f),
    );

    // Every surviving object kept its contents across the move.
    let mut verified = 0;
    for (i, root) in roots.iter_live().enumerate() {
        let (word, _) = heap.read_data(&mut kernel, core, root, 0, 0).unwrap();
        assert!(
            (0xC0FFEE00..0xC0FFEE00 + 600).contains(&word),
            "object {i} corrupted!"
        );
        verified += 1;
    }
    println!("verified         : {verified} surviving objects intact");
    println!(
        "heap used after  : {:.1} MiB (large objects stay page-aligned: {})",
        heap.used_bytes() as f64 / (1 << 20) as f64,
        roots
            .iter_live()
            .filter(|r| r.0.get() % PAGE_SIZE == 0)
            .count()
    );
}
