//! A real sparse-matrix × vector analytics loop on the managed heap —
//! the workload class the paper's introduction motivates (Spark-style
//! numeric analytics over large row objects).
//!
//! Builds a CSR-ish matrix whose rows are managed heap objects, runs
//! power-iteration steps with *actual arithmetic through the simulated
//! memory*, and compares SVAGC against the memmove baseline on the same
//! computation. Row buffers are re-materialized every few iterations
//! (as a caching analytics engine would), creating the large-object churn
//! that full GCs must absorb.
//!
//! ```text
//! cargo run --release --example spmv_analytics
//! ```

use svagc::gc::{GcConfig, Lisp2Collector};
use svagc::heap::{Heap, HeapConfig, HeapError, ObjRef, ObjShape, RootId, RootSet};
use svagc::kernel::{CoreId, Kernel};
use svagc::metrics::MachineConfig;
use svagc::vmem::Asid;

const N: usize = 16384; // matrix dimension
const NNZ_PER_ROW: usize = 32; // nonzeros per row
const ITERS: usize = 12;

const CORE: CoreId = CoreId(0);

struct Engine {
    kernel: Kernel,
    heap: Heap,
    roots: RootSet,
    gc: Lisp2Collector,
    /// Root slot of each matrix row object.
    rows: Vec<RootId>,
    /// Root slot of the current x vector.
    x: RootId,
    gc_runs: usize,
}

impl Engine {
    fn new(cfg: GcConfig) -> Engine {
        let mut kernel = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 32 << 20);
        // Row object: NNZ (column, value) pairs = 2*NNZ words. 1024 rows
        // are bundled per "partition" object so partitions are 512 KiB
        // (128 pages, far above the 10-page SwapVA threshold). The heap
        // is sized ~1.5x the live set so refresh churn triggers full GCs.
        let heap_bytes = 13 << 20; // ~1.5x the live set
        let heap = Heap::new(&mut kernel, Asid(1), HeapConfig::new(heap_bytes)).unwrap();
        Engine {
            kernel,
            heap,
            roots: RootSet::new(),
            gc: Lisp2Collector::new(cfg),
            rows: Vec::new(),
            x: RootId(0),
            gc_runs: 0,
        }
    }

    fn alloc(&mut self, shape: ObjShape) -> ObjRef {
        match self.heap.alloc(&mut self.kernel, CORE, shape) {
            Ok((obj, _)) => obj,
            Err(HeapError::NeedGc { .. }) => {
                self.gc
                    .collect(&mut self.kernel, &mut self.heap, &mut self.roots)
                    .expect("gc");
                self.gc_runs += 1;
                self.heap.alloc(&mut self.kernel, CORE, shape).expect("post-GC alloc").0
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// One partition holds `rows_per_part` rows of (col, val-fixedpoint).
    fn build_partition(&mut self, first_row: usize, rows_per_part: usize) -> ObjRef {
        let words = (rows_per_part * NNZ_PER_ROW * 2) as u32;
        let obj = self.alloc(ObjShape::data(words));
        let mut w = 0u64;
        for r in 0..rows_per_part {
            let row = first_row + r;
            for k in 0..NNZ_PER_ROW {
                // Deterministic pseudo-random column + weight.
                let col = (row * 31 + k * 977) % N;
                let val = 1 + ((row * 7 + k) % 9) as u64; // fixed-point
                self.heap
                    .write_data(&mut self.kernel, CORE, obj, 0, w, col as u64)
                    .unwrap();
                self.heap
                    .write_data(&mut self.kernel, CORE, obj, 0, w + 1, val)
                    .unwrap();
                w += 2;
            }
        }
        obj
    }

    fn setup(&mut self) {
        let rows_per_part = 1024;
        for first in (0..N).step_by(rows_per_part) {
            let obj = self.build_partition(first, rows_per_part);
            self.rows.push(self.roots.push(obj));
        }
        let x = self.alloc(ObjShape::data(N as u32));
        for i in 0..N as u64 {
            self.heap
                .write_data(&mut self.kernel, CORE, x, 0, i, 1_000)
                .unwrap();
        }
        self.x = self.roots.push(x);
    }

    /// y = A·x with real reads/writes through the simulated memory; the
    /// new y becomes x (the old vector is garbage).
    fn iterate(&mut self, refresh_partitions: bool) -> u64 {
        let rows_per_part = 1024;
        let y = self.alloc(ObjShape::data(N as u32));
        let x = self.roots.get(self.x);
        let mut checksum = 0u64;
        for (p, rid) in self.rows.clone().into_iter().enumerate() {
            let part = self.roots.get(rid);
            let mut w = 0u64;
            for r in 0..rows_per_part {
                let mut acc = 0u64;
                for _ in 0..NNZ_PER_ROW {
                    let (col, _) = self
                        .heap
                        .read_data(&mut self.kernel, CORE, part, 0, w)
                        .unwrap();
                    let (val, _) = self
                        .heap
                        .read_data(&mut self.kernel, CORE, part, 0, w + 1)
                        .unwrap();
                    let (xv, _) = self
                        .heap
                        .read_data(&mut self.kernel, CORE, x, 0, col)
                        .unwrap();
                    acc = acc.wrapping_add(val * (xv >> 6));
                    w += 2;
                }
                let row = p * rows_per_part + r;
                self.heap
                    .write_data(&mut self.kernel, CORE, y, 0, row as u64, acc)
                    .unwrap();
                checksum = checksum.wrapping_add(acc);
            }
        }
        // Re-materialize a few partitions (cache refresh -> garbage).
        if refresh_partitions {
            for p in 0..3 {
                let idx = (p * 37) % self.rows.len();
                let rid = self.rows[idx];
                self.roots.set(rid, ObjRef::NULL);
                let fresh = self.build_partition(idx * rows_per_part, rows_per_part);
                self.roots.set(rid, fresh);
            }
        }
        self.roots.set(self.x, y);
        checksum
    }
}

fn run(label: &str, cfg: GcConfig) -> (u64, f64, usize) {
    let mut e = Engine::new(cfg);
    e.setup();
    let mut checksum = 0;
    for i in 0..ITERS {
        checksum = e.iterate(true);
        let _ = i;
    }
    let ms = e
        .gc
        .log
        .total_pause()
        .at_ghz(e.kernel.machine.freq_ghz)
        .as_millis();
    println!(
        "{label:<18} checksum {checksum:>20}  full GCs: {:<3} total pause: {ms:.3} ms",
        e.gc.log.count()
    );
    (checksum, ms, e.gc.log.count())
}

fn main() {
    println!("SpMV power iteration, {N}x{N} matrix, {NNZ_PER_ROW} nnz/row, {ITERS} iterations\n");
    let (c1, ms_swap, g1) = run("SVAGC (+SwapVA)", GcConfig::svagc(8));
    let (c2, ms_move, g2) = run("LISP2 (memmove)", GcConfig::lisp2_memmove(8));
    assert_eq!(c1, c2, "identical computation under both collectors");
    assert!(g1 > 0 && g2 > 0, "the heap must have been collected");
    println!(
        "\nsame numeric result; SVAGC cut total GC pause by {:.1}%",
        100.0 * (1.0 - ms_swap / ms_move)
    );
}
