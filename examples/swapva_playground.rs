//! SwapVA at the system-call level: swap semantics, aggregation,
//! PMD caching, and the Algorithm 2 overlap rotation — without any GC.
//!
//! ```text
//! cargo run --release --example swapva_playground
//! ```

use svagc::kernel::{CoreId, Kernel, SwapRequest, SwapVaOptions};
use svagc::metrics::MachineConfig;
use svagc::vmem::{AddressSpace, Asid};

fn main() {
    let machine = MachineConfig::i5_7600();
    let mut k = Kernel::new(machine, 4096);
    let mut s = AddressSpace::new(Asid(1));
    let core = CoreId(0);

    // --- 1. Basic zero-copy swap -------------------------------------
    let a = k.vmem.alloc_region(&mut s, 16).unwrap();
    let b = k.vmem.alloc_region(&mut s, 16).unwrap();
    k.vmem.write_u64(&s, a, 0xAAAA).unwrap();
    k.vmem.write_u64(&s, b, 0xBBBB).unwrap();
    let req = SwapRequest { a, b, pages: 16 };
    let (cost, _) = k.swap_va(&mut s, core, req, SwapVaOptions::naive()).unwrap();
    println!("swap 16 pages: {} (simulated)", k.time(cost));
    assert_eq!(k.vmem.read_u64(&s, a).unwrap(), 0xBBBB);
    assert_eq!(k.vmem.read_u64(&s, b).unwrap(), 0xAAAA);
    println!(
        "contents exchanged; bytes copied so far: {} (zero-copy!)",
        k.perf.bytes_copied
    );

    // --- 2. memmove comparison ---------------------------------------
    let mm = k.memmove(&s, core, a, b, 16 * 4096).unwrap();
    println!(
        "same move via memmove: {} ({}x slower, {} bytes of traffic)",
        k.time(mm),
        mm.get() / cost.get().max(1),
        k.perf.bytes_copied
    );

    // --- 3. Aggregation ------------------------------------------------
    let reqs: Vec<SwapRequest> = (0..32)
        .map(|_| {
            let x = k.vmem.alloc_region(&mut s, 2).unwrap();
            let y = k.vmem.alloc_region(&mut s, 2).unwrap();
            SwapRequest { a: x, b: y, pages: 2 }
        })
        .collect();
    let opts = SwapVaOptions::pinned();
    let mut separated = svagc::metrics::Cycles::ZERO;
    for r in &reqs {
        separated += k.swap_va(&mut s, core, *r, opts).unwrap().0;
    }
    let (aggregated, _) = k.swap_va_batch(&mut s, core, &reqs, opts).unwrap();
    println!(
        "32 small swaps: separated {} vs aggregated {} ({:.1}x)",
        k.time(separated),
        k.time(aggregated),
        separated.get() as f64 / aggregated.get() as f64
    );

    // --- 4. PMD caching -------------------------------------------------
    let big_a = k.vmem.alloc_region(&mut s, 512).unwrap();
    let big_b = k.vmem.alloc_region(&mut s, 512).unwrap();
    let big = SwapRequest { a: big_a, b: big_b, pages: 512 };
    let mut no_cache = SwapVaOptions::pinned();
    no_cache.pmd_cache = false;
    let (cold, _) = k.swap_va(&mut s, core, big, no_cache).unwrap();
    let (warm, _) = k.swap_va(&mut s, core, big, SwapVaOptions::pinned()).unwrap();
    println!(
        "512-page swap: no PMD cache {} vs cached {} ({:.1}% saved; {} cache hits)",
        k.time(cold),
        k.time(warm),
        100.0 * (cold.get() - warm.get()) as f64 / cold.get() as f64,
        k.perf.pmd_cache_hits
    );

    // --- 5. Overlap rotation (Algorithm 2) ------------------------------
    // A 12-page window: move pages [4..12) down to [0..8) — src and dst
    // overlap by 4 pages; the gcd rotation does it in n+delta writes.
    let w = k.vmem.alloc_region(&mut s, 12).unwrap();
    for i in 0..12 {
        k.vmem.write_u64(&s, w.add_pages(i), 100 + i).unwrap();
    }
    let before = k.perf.pte_swaps;
    let overlap = SwapRequest {
        a: w,
        b: w.add_pages(4),
        pages: 8,
    };
    assert!(overlap.overlaps());
    k.swap_va(&mut s, core, overlap, SwapVaOptions::naive()).unwrap();
    for i in 0..8 {
        assert_eq!(k.vmem.read_u64(&s, w.add_pages(i)).unwrap(), 104 + i);
    }
    println!(
        "overlap move of 8 pages by 4: {} PTE writes (O(n+delta) = 12, not 2n = 16)",
        k.perf.pte_swaps - before
    );

    println!("\nfinal counters:\n{}", k.perf);
}
