//! SVAGC — a userspace Rust reproduction of *"SVAGC: Garbage Collection with
//! a Scalable Virtual Address Swapping Technique"* (Ataie & Yu, IEEE CLUSTER
//! 2022).
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`metrics`] — machine model, cycle accounting, cache/TLB simulation.
//! * [`vmem`] — simulated physical memory and x86-64-style 4-level page
//!   tables with per-core TLBs.
//! * [`kernel`] — the OS model: the SwapVA system call (Algorithm 1), its
//!   aggregation / PMD-caching / overlap (Algorithm 2) optimizations, TLB
//!   shootdown and IPI accounting, and a cost-modeled `memmove`.
//! * [`heap`] — the managed heap: object model, bidirectional TLABs, and the
//!   page-aligned large-object allocator of Algorithm 3.
//! * [`gc`] — SVAGC itself: a parallel LISP2 mark-compact collector whose
//!   `MoveObject` dispatches large objects to SwapVA (Algorithms 3–4).
//! * [`baselines`] — ParallelGC-like and Shenandoah-like comparators.
//! * [`workloads`] — the paper's eleven benchmarks and run drivers.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use svagc_baselines as baselines;
pub use svagc_core as gc;
pub use svagc_heap as heap;
pub use svagc_kernel as kernel;
pub use svagc_metrics as metrics;
pub use svagc_vmem as vmem;
pub use svagc_workloads as workloads;
