//! End-to-end chaos: real workloads driven through the full driver with
//! kernel fault injection enabled. Every GC cycle must complete, the
//! per-phase verifier must stay silent, and the final live heap must be
//! bit-identical to a fault-free run of the same workload.

use svagc::workloads::driver::{run, CollectorKind, RunConfig, RunResult};
use svagc::workloads::suite;

const CHAOS_SEED: u64 = 0xFA017;

fn chaos_run(name: &str, fault_rate: f64) -> RunResult {
    let mut w = suite::by_name(name).unwrap();
    let mut cfg = RunConfig::new(CollectorKind::Svagc)
        .with_faults(fault_rate, CHAOS_SEED)
        .with_verify_phases(true);
    cfg.gc_threads = 8;
    run(w.as_mut(), &cfg).unwrap_or_else(|e| panic!("{name} at p={fault_rate}: {e}"))
}

/// The ISSUE acceptance scenario: LRUCache at a 1% fault rate with a fixed
/// seed completes every GC cycle, reports zero verifier violations, records
/// nonzero resilience counters, and ends bit-identical to the fault-free run.
#[test]
fn lrucache_one_percent_faults_bit_identical() {
    let clean = chaos_run("LRUCache", 0.0);
    let faulty = chaos_run("LRUCache", 0.01);

    assert!(clean.verify_ok && faulty.verify_ok);
    assert!(faulty.gc.count() >= 2, "GC must trigger under faults");
    assert_eq!(
        faulty.gc.count(),
        clean.gc.count(),
        "faults must not change the GC schedule"
    );
    assert!(
        faulty.gc.total_faults_injected() > 0,
        "a 1% plan over a full run must fire"
    );
    assert!(
        faulty.gc.total_swap_retries() + faulty.gc.total_swap_fallbacks() > 0,
        "injected faults must surface as retries or fallbacks"
    );
    assert_eq!(
        faulty.heap_hash, clean.heap_hash,
        "faulty run must end with a bit-identical live heap"
    );
    // Verifier ran after every phase of every cycle and stayed silent
    // (a violation would have failed the run with GcError::Corruption).
    for c in &faulty.gc.cycles {
        assert_eq!(c.verify_violations, 0);
    }
}

/// A cross-section of the workload suite at 1% transient-and-permanent
/// faults: everything completes and matches its fault-free heap.
#[test]
fn suite_cross_section_survives_one_percent_faults() {
    for name in ["Sigverify", "Bisort", "SOR.large x10"] {
        let clean = chaos_run(name, 0.0);
        let faulty = chaos_run(name, 0.01);
        assert!(faulty.verify_ok, "{name}: end-of-run verification failed");
        assert_eq!(
            faulty.heap_hash, clean.heap_hash,
            "{name}: heap diverged under faults"
        );
        assert_eq!(faulty.gc.count(), clean.gc.count(), "{name}: GC schedule");
    }
}

/// Aggregated SwapVA (the paper's batched syscall) under end-to-end faults:
/// batches split and resume without corrupting the heap.
#[test]
fn aggregated_collector_splits_batches_under_faults() {
    // SOR.large's 64 KB objects (17 pages) pack ~4 requests under the
    // batch page budget; Sigverify's 1 MB objects would flush one by one.
    let run_kind = |fault_rate: f64| {
        let mut w = suite::by_name("SOR.large").unwrap();
        let mut cfg = RunConfig::new(CollectorKind::Custom(
            svagc::gc::GcConfig::svagc(8).with_aggregation(Some(16)),
        ))
        .with_faults(fault_rate, CHAOS_SEED)
        .with_verify_phases(true);
        cfg.gc_threads = 8;
        run(w.as_mut(), &cfg).unwrap()
    };
    let clean = run_kind(0.0);
    let faulty = run_kind(0.05);
    assert!(faulty.verify_ok);
    assert_eq!(faulty.heap_hash, clean.heap_hash);
    assert!(
        faulty.gc.total_batch_splits() > 0,
        "5% faults over batched swaps must split at least one batch"
    );
}
