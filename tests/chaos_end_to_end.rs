//! End-to-end chaos: real workloads driven through the full driver with
//! kernel fault injection enabled. Every GC cycle must complete, the
//! per-phase verifier must stay silent, and the final live heap must be
//! bit-identical to a fault-free run of the same workload.

use svagc::workloads::driver::{run, CollectorKind, RunConfig, RunResult};
use svagc::workloads::suite;

const CHAOS_SEED: u64 = 0xFA017;

fn chaos_run(name: &str, fault_rate: f64) -> RunResult {
    let mut w = suite::by_name(name).unwrap();
    let mut cfg = RunConfig::new(CollectorKind::Svagc)
        .with_faults(fault_rate, CHAOS_SEED)
        .with_verify_phases(true);
    cfg.gc_threads = 8;
    run(w.as_mut(), &cfg).unwrap_or_else(|e| panic!("{name} at p={fault_rate}: {e}"))
}

/// The ISSUE acceptance scenario: LRUCache at a 1% fault rate with a fixed
/// seed completes every GC cycle, reports zero verifier violations, records
/// nonzero resilience counters, and ends bit-identical to the fault-free run.
#[test]
fn lrucache_one_percent_faults_bit_identical() {
    let clean = chaos_run("LRUCache", 0.0);
    let faulty = chaos_run("LRUCache", 0.01);

    assert!(clean.verify_ok && faulty.verify_ok);
    assert!(faulty.gc.count() >= 2, "GC must trigger under faults");
    assert_eq!(
        faulty.gc.count(),
        clean.gc.count(),
        "faults must not change the GC schedule"
    );
    assert!(
        faulty.gc.total_faults_injected() > 0,
        "a 1% plan over a full run must fire"
    );
    assert!(
        faulty.gc.total_swap_retries() + faulty.gc.total_swap_fallbacks() > 0,
        "injected faults must surface as retries or fallbacks"
    );
    assert_eq!(
        faulty.heap_hash, clean.heap_hash,
        "faulty run must end with a bit-identical live heap"
    );
    // Verifier ran after every phase of every cycle and stayed silent
    // (a violation would have failed the run with GcError::Corruption).
    for c in &faulty.gc.cycles {
        assert_eq!(c.verify_violations, 0);
    }
}

/// A cross-section of the workload suite at 1% transient-and-permanent
/// faults: everything completes and matches its fault-free heap.
#[test]
fn suite_cross_section_survives_one_percent_faults() {
    for name in ["Sigverify", "Bisort", "SOR.large x10"] {
        let clean = chaos_run(name, 0.0);
        let faulty = chaos_run(name, 0.01);
        assert!(faulty.verify_ok, "{name}: end-of-run verification failed");
        assert_eq!(
            faulty.heap_hash, clean.heap_hash,
            "{name}: heap diverged under faults"
        );
        assert_eq!(faulty.gc.count(), clean.gc.count(), "{name}: GC schedule");
    }
}

/// Aggregated SwapVA (the paper's batched syscall) under end-to-end faults:
/// batches split and resume without corrupting the heap.
#[test]
fn aggregated_collector_splits_batches_under_faults() {
    // SOR.large's 64 KB objects (17 pages) pack ~4 requests under the
    // batch page budget; Sigverify's 1 MB objects would flush one by one.
    let run_kind = |fault_rate: f64| {
        let mut w = suite::by_name("SOR.large").unwrap();
        let mut cfg = RunConfig::new(CollectorKind::Custom(
            svagc::gc::GcConfig::svagc(8).with_aggregation(Some(16)),
        ))
        .with_faults(fault_rate, CHAOS_SEED)
        .with_verify_phases(true);
        cfg.gc_threads = 8;
        run(w.as_mut(), &cfg).unwrap()
    };
    let clean = run_kind(0.0);
    let faulty = run_kind(0.05);
    assert!(faulty.verify_ok);
    assert_eq!(faulty.heap_hash, clean.heap_hash);
    assert!(
        faulty.gc.total_batch_splits() > 0,
        "5% faults over batched swaps must split at least one batch"
    );
}

/// Escalating fault rates (10% and 50% of all swap requests): the retry
/// ladder plus memmove fallback must absorb every injected fault and the
/// live heap must stay bit-identical at every rate.
#[test]
fn heavy_fault_rates_stay_bit_identical() {
    let clean = chaos_run("LRUCache", 0.0);
    for rate in [0.10, 0.50] {
        let faulty = chaos_run("LRUCache", rate);
        assert!(faulty.verify_ok, "p={rate}: verification failed");
        assert_eq!(
            faulty.heap_hash, clean.heap_hash,
            "p={rate}: heap diverged under faults"
        );
        assert_eq!(faulty.gc.count(), clean.gc.count(), "p={rate}: GC schedule");
        assert!(faulty.gc.total_faults_injected() > 0, "p={rate}: plan never fired");
        assert_eq!(faulty.gc.total_aborts(), 0, "p={rate}: default policy must absorb");
    }
    // At 50%, permanent faults in the uniform mix are frequent enough that
    // the fallback path must have been taken.
    let heavy = chaos_run("LRUCache", 0.50);
    assert!(heavy.gc.total_swap_fallbacks() > 0, "50% must force fallbacks");
}

/// Permanent-only faults (EINVAL/ENOMEM — nothing is retryable) with a
/// zero fallback budget: every swap-phase attempt is unrecoverable, so each
/// affected cycle must abort, roll back through the journal, and re-run
/// degraded. The standard policy lands in memmove-only mode, whose cycles
/// perform no swaps and therefore see no faults — so the run completes and
/// the final heap is still bit-identical to the fault-free reference.
#[test]
fn permanent_only_faults_abort_rollback_and_degrade() {
    let run_kind = |fault_rate: f64| {
        let mut w = suite::by_name("LRUCache").unwrap();
        let gc_cfg = svagc::gc::GcConfig::svagc(8)
            .with_retry_policy(svagc::gc::RetryPolicy {
                max_retries: 2,
                fallback_budget: Some(0),
                ..svagc::gc::RetryPolicy::default()
            })
            .with_degrade(svagc::gc::DegradePolicy::standard());
        let mut cfg = RunConfig::new(CollectorKind::Custom(gc_cfg))
            .with_faults(fault_rate, CHAOS_SEED)
            .with_verify_phases(true);
        cfg.fault_permanent_only = true;
        cfg.gc_threads = 8;
        run(w.as_mut(), &cfg).unwrap_or_else(|e| panic!("p={fault_rate}: {e}"))
    };
    let clean = run_kind(0.0);
    let faulty = run_kind(1.0);
    assert!(faulty.verify_ok);
    assert_eq!(
        faulty.heap_hash, clean.heap_hash,
        "rollback + degraded re-run must converge to the fault-free heap"
    );
    assert!(faulty.gc.total_aborts() > 0, "p=1 permanent faults must abort");
    assert!(faulty.gc.total_rollback_pages() > 0, "aborts must roll pages back");
    assert_eq!(
        faulty.gc.max_mode(),
        1,
        "policy says one escalation to memmove-only ends the faults"
    );
    // Mode transitions must match the policy: a cycle either committed in
    // Normal mode with no aborts, or aborted exactly once and committed in
    // memmove-only (level 1) with zero swaps.
    for c in &faulty.gc.cycles {
        if c.aborts > 0 {
            assert_eq!(c.mode, 1, "an aborted cycle must commit degraded");
            assert_eq!(c.swapped_objects, 0, "memmove-only performs no swaps");
        }
        assert_eq!(c.verify_violations, 0);
    }
    // The clean run must not touch the transactional machinery at all.
    assert_eq!(clean.gc.total_aborts(), 0);
    assert_eq!(clean.gc.max_mode(), 0);
}

/// Forced watchdog expiry end to end: a 1-cycle per-phase budget is
/// impossible to meet in any mode, so the cycle aborts, degradation walks
/// the whole ladder, and the error propagates out of the driver — while a
/// generous budget is invisible (same hash as the no-deadline run).
#[test]
fn forced_watchdog_expiry_propagates_and_generous_budget_is_invisible() {
    let run_kind = |deadline: Option<u64>| {
        let mut w = suite::by_name("Sigverify").unwrap();
        let mut cfg = RunConfig::new(CollectorKind::Svagc)
            .with_verify_phases(true)
            .with_deadline(deadline)
            .with_degrade(svagc::gc::DegradePolicy::standard());
        cfg.gc_threads = 4;
        run(w.as_mut(), &cfg)
    };
    let reference = run_kind(None).expect("no deadline");
    let generous = run_kind(Some(u64::MAX / 2)).expect("generous deadline");
    assert_eq!(generous.heap_hash, reference.heap_hash, "armed watchdog must be free");
    assert_eq!(generous.gc.total_watchdog_expiries(), 0);
    assert_eq!(generous.gc.total_aborts(), 0);

    let err = run_kind(Some(1)).expect_err("a 1-cycle budget cannot be met");
    assert!(
        err.contains("watchdog deadline expired"),
        "driver must surface the watchdog error, got: {err}"
    );
}

/// Chaos under the stale-translation oracle: a faulty run (retries,
/// fallbacks, batch splits — every recovery path exercised) must still
/// never let any core translate through a stale TLB entry, and watching
/// for that must not perturb a single simulated byte.
#[test]
fn chaos_under_tlb_oracle_is_stale_free_and_invisible() {
    let plain = chaos_run("LRUCache", 0.10);

    let mut w = suite::by_name("LRUCache").unwrap();
    let mut cfg = RunConfig::new(CollectorKind::Svagc)
        .with_faults(0.10, CHAOS_SEED)
        .with_verify_phases(true)
        .with_tlb_oracle(true);
    cfg.gc_threads = 8;
    // The driver fails closed on any stale hit or audit violation, so
    // unwrapping IS the oracle assertion.
    let watched = run(w.as_mut(), &cfg).expect("oracle must stay silent under chaos");

    assert!(watched.tlb_oracle.enabled);
    assert!(watched.tlb_oracle.checks > 0, "oracle must actually observe hits");
    assert_eq!(watched.tlb_oracle.stale_hits, 0);
    assert_eq!(watched.tlb_oracle.audit_violations, 0);
    assert_eq!(
        watched.heap_hash, plain.heap_hash,
        "the oracle is an observer: same seed, same bytes"
    );
    assert_eq!(watched.gc.count(), plain.gc.count());
}
