//! End-to-end `--concurrent` mode: SATB concurrent marking through the
//! full driver stack. The load-bearing invariant everywhere: a concurrent
//! run's final live heap is bit-identical to the stop-the-world run's —
//! SATB may float garbage *within* a cycle, but the driver path models
//! the whole cycle at trigger time, so survivors (and their bytes and
//! addresses) never differ.

use svagc::gc::{Collector, ConcurrentCollector, GcConfig, Lisp2Collector, SchedulerKind};
use svagc::heap::{Heap, HeapConfig, HeapVerifier, ObjShape, RootSet};
use svagc::kernel::{CoreId, FaultConfig, FaultPlan, Kernel};
use svagc::metrics::MachineConfig;
use svagc::vmem::Asid;
use svagc::workloads::driver::{run, CollectorKind, RunConfig, RunResult};
use svagc::workloads::suite;

const CORE: CoreId = CoreId(0);

fn run_workload(name: &str, steps: usize, configure: impl FnOnce(RunConfig) -> RunConfig) -> RunResult {
    let mut w = suite::by_name(name).unwrap();
    let mut cfg = configure(RunConfig::new(CollectorKind::Svagc));
    cfg.steps = Some(steps);
    run(w.as_mut(), &cfg).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// The acceptance criterion, pinned the hard way: `--concurrent` produces
/// a bit-identical final heap on every workload of the standard suite,
/// while charging strictly less marking to the pause.
#[test]
fn concurrent_bit_identical_to_stw_on_every_workload() {
    for w in suite::standard_suite() {
        let name = w.name();
        let steps = w.default_steps().min(25);
        let stw = run_workload(&name, steps, |c| c);
        let conc = run_workload(&name, steps, |c| c.with_concurrent(true));
        assert!(stw.verify_ok && conc.verify_ok, "{name}: verification failed");
        assert_eq!(
            conc.heap_hash, stw.heap_hash,
            "{name}: concurrent heap must be bit-identical to STW"
        );
        assert_eq!(
            conc.gc.count(),
            stw.gc.count(),
            "{name}: concurrent marking must not change the GC schedule"
        );
        if stw.gc.count() > 0 {
            assert!(
                conc.gc.total_concurrent_mark().get() > 0,
                "{name}: marking must run off-pause"
            );
            assert!(
                conc.gc.phase_totals().mark < stw.gc.phase_totals().mark,
                "{name}: the STW mark charge must shrink"
            );
        }
    }
}

/// Satellite: chaos under `--concurrent`. Injected SwapVA faults at 1%
/// and 10% must not break the bit-identity between concurrent and the
/// fault-free STW reference — retries, fallbacks, and the transactional
/// journal all compose with the premark path.
#[test]
fn concurrent_survives_fault_injection_bit_identical() {
    // LRUCache at its full default step count is the chaos suite's
    // swap-heavy scenario — Bisort's small objects never reach SwapVA, so
    // its fault plans would never fire, and a truncated run gives a 1%
    // plan too few swap requests to guarantee a hit.
    let steps = suite::by_name("LRUCache").unwrap().default_steps();
    let reference = run_workload("LRUCache", steps, |c| c);
    for rate in [0.01, 0.10] {
        let faulty = run_workload("LRUCache", steps, |c| {
            c.with_concurrent(true)
                .with_faults(rate, 0xFA017)
                .with_verify_phases(true)
        });
        assert!(faulty.verify_ok);
        assert!(
            faulty.gc.total_faults_injected() > 0,
            "a {rate} plan over a full run must fire"
        );
        assert_eq!(
            faulty.heap_hash, reference.heap_hash,
            "faults at {rate} under --concurrent must preserve bit-identity"
        );
        for c in &faulty.gc.cycles {
            assert_eq!(c.verify_violations, 0);
        }
    }
}

/// Satellite: pressure ladder under `--concurrent`. The escalation path
/// (minor → full → degrade) drives collections through the concurrent
/// collector; the run must complete with the same final heap as the
/// pressured STW run.
#[test]
fn pressure_ladder_under_concurrent_matches_stw() {
    let stw = run_workload("Bisort", 60, |c| c.with_pressure(true));
    let conc = run_workload("Bisort", 60, |c| c.with_pressure(true).with_concurrent(true));
    assert!(stw.verify_ok && conc.verify_ok);
    assert_eq!(
        conc.heap_hash, stw.heap_hash,
        "pressure + concurrent must end bit-identical to pressure + STW"
    );
}

/// Satellite: abort-or-finish under chaos. A pressure-style collect()
/// arriving mid-mark with kernel faults armed must finish the in-flight
/// mark inside the pause (never overlap two cycles), survive the faults
/// through the journal/retry machinery, and produce a heap bit-identical
/// to an untouched STW reference.
#[test]
fn abort_or_finish_mid_mark_under_faults() {
    // Mesh layout: even-indexed objects are roots; odd ones hang off
    // their predecessor's field 0. A rooted anchor also points at the
    // odd objects we will orphan, so the overwritten targets (a) are NOT
    // marked by the initial root scan — the barrier must log them — and
    // (b) stay reachable, so SATB floats no garbage and bit-identity
    // with the STW reference is exact.
    const ORPHANED: [usize; 4] = [9, 11, 13, 15];
    let build = |k: &mut Kernel| {
        let mut heap = Heap::new(k, Asid(1), HeapConfig::new(16 << 20)).unwrap();
        let mut roots = RootSet::new();
        let mut objs = Vec::new();
        // Page-crossing data objects (SwapVA candidates) interleaved with
        // doomed filler, plus a ref mesh to give marking real work.
        for i in 0..24u64 {
            let (big, _) = heap.alloc(k, CORE, ObjShape::data_bytes(48 << 10)).unwrap();
            heap.write_data(k, CORE, big, 0, 0, 0x5EED + i).unwrap();
            roots.push(big);
            heap.alloc(k, CORE, ObjShape::data_bytes(16 << 10)).unwrap();
        }
        for i in 0..32u64 {
            let (o, _) = heap.alloc(k, CORE, ObjShape::with_refs(2, 4)).unwrap();
            if i % 2 == 0 {
                roots.push(o);
            }
            objs.push(o);
        }
        for (i, &o) in objs.iter().enumerate() {
            heap.write_ref(k, CORE, o, 0, objs[(i + 1) % objs.len()]).unwrap();
        }
        let (anchor, _) = heap.alloc(k, CORE, ObjShape::with_refs(4, 1)).unwrap();
        roots.push(anchor);
        for (f, &j) in ORPHANED.iter().enumerate() {
            heap.write_ref(k, CORE, anchor, f as u64, objs[j]).unwrap();
        }
        (heap, roots, objs)
    };

    // STW reference on a pristine machine, with the orphaning stores
    // applied before its (single) collection.
    let mut k_ref = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
    let (mut h_ref, mut r_ref, objs_ref) = build(&mut k_ref);
    for &j in &ORPHANED {
        h_ref
            .write_ref(&mut k_ref, CORE, objs_ref[j - 1], 0, svagc::heap::ObjRef::NULL)
            .unwrap();
    }
    let mut stw = Lisp2Collector::new(GcConfig::svagc(4));
    stw.collect(&mut k_ref, &mut h_ref, &mut r_ref).unwrap();

    // Concurrent collector: start an incremental mark, apply the same
    // stores mid-mark through the deletion barrier, advance the trace,
    // then force the collect with faults armed.
    let mut k = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 64 << 20);
    let (mut heap, mut roots, objs) = build(&mut k);
    let mut gc = ConcurrentCollector::new(Lisp2Collector::new(GcConfig::svagc(4)));
    assert!(gc.begin_mark(&heap, &roots));
    for &j in &ORPHANED {
        assert!(!gc.is_marked(objs[j]), "target must still be white");
        gc.write_barrier(&mut k, &mut heap, CORE, objs[j - 1], 0).unwrap();
        heap.write_ref(&mut k, CORE, objs[j - 1], 0, svagc::heap::ObjRef::NULL).unwrap();
    }
    assert_eq!(gc.satb_pending(), ORPHANED.len());
    gc.mark_step(&mut k, &heap, 8).unwrap();
    k.set_fault_plan(Some(FaultPlan::new(FaultConfig::uniform(0.10, 0xFA017))));
    assert!(gc.marking(), "mark in flight when the pressure collect arrives");
    let stats = gc.collect(&mut k, &mut heap, &mut roots).unwrap();
    assert!(!gc.marking(), "abort-or-finish: the cycle consumed the mark");
    assert!(
        stats.satb_logged > 0,
        "mid-mark overwrites must reach the final-mark drain"
    );
    assert!(
        stats.faults_injected > 0,
        "a 10% plan over a compaction must fire"
    );

    let v = HeapVerifier::new();
    assert_eq!(
        v.content_hash(&k, &mut heap),
        v.content_hash(&k_ref, &mut h_ref),
        "finish-in-pause under faults must still match the STW reference"
    );
    // The collector is reusable: a fresh mark window opens cleanly.
    assert!(gc.begin_mark(&heap, &roots));
}

/// Satellite: scheduler and host-thread invariance. The concurrent-mode
/// heap hash must not depend on `SVAGC_HOST_THREADS` (host parallelism
/// never touches the simulated plane) or on the GC scheduling substrate
/// (barrier pipeline vs work packets).
#[test]
fn concurrent_hash_invariant_across_host_threads_and_schedulers() {
    let bisort = |sched: SchedulerKind| {
        run_workload("Bisort", 40, |c| c.with_concurrent(true).with_scheduler(sched))
    };
    std::env::set_var("SVAGC_HOST_THREADS", "1");
    let h1 = bisort(SchedulerKind::Barrier);
    std::env::set_var("SVAGC_HOST_THREADS", "4");
    let h4 = bisort(SchedulerKind::Barrier);
    std::env::remove_var("SVAGC_HOST_THREADS");
    assert_eq!(
        h1.heap_hash, h4.heap_hash,
        "host threads must not leak into the simulated plane"
    );
    assert_eq!(h1.gc.total_pause(), h4.gc.total_pause());

    let packets = bisort(SchedulerKind::Packets);
    assert_eq!(
        packets.heap_hash, h1.heap_hash,
        "packet scheduler must compact to the same heap"
    );
    assert!(packets.gc.total_sched_packets() > 0, "packets actually ran");
}
