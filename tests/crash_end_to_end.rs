//! End-to-end crash consistency: real workloads driven through the full
//! driver with seeded crash points. A crash kills the simulated machine
//! (volatile state gone, durable WAL kept); recovery must rebuild a heap
//! bit-identical to the pre- or post-cycle snapshot — never a hybrid —
//! and the seeded log mutations must make recovery fail closed.

use svagc::gc::CycleClass;
use svagc::kernel::{CrashPlan, CrashPoint, WalMutation};
use svagc::workloads::driver::{
    run, run_classified, run_with_crash, CollectorKind, CrashOutcome, CrashReport,
    FailureKind, RunConfig,
};
use svagc::workloads::suite;

const SEED_WORKLOAD: &str = "LRUCache";

fn cfg_with(plans: Vec<CrashPlan>) -> RunConfig {
    RunConfig::new(CollectorKind::Svagc)
        .with_crash_plans(plans)
        .with_verify_phases(true)
        .with_tlb_oracle(true)
}

fn crash_run(plans: Vec<CrashPlan>, mutation: Option<WalMutation>) -> CrashReport {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = cfg_with(plans.clone()).with_wal_mutation(mutation);
    match run_with_crash(w.as_mut(), &cfg, true).unwrap_or_else(|f| panic!("{}", f.message)) {
        CrashOutcome::Crashed(rep) => *rep,
        CrashOutcome::Completed(_) => panic!("{plans:?}: no crash point fired"),
    }
}

/// Every mid-cycle crash point, injected into a real workload run,
/// recovers to a verified snapshot (the recovery state machine hashes
/// the rebuilt heap against the journaled snapshot and fails closed on
/// any mismatch — an `Ok` outcome IS the bit-identity proof).
#[test]
fn every_crash_point_recovers_on_a_real_workload() {
    let plans = [
        CrashPlan::first(CrashPoint::BeforeBatchApply),
        CrashPlan::first(CrashPoint::InsideBatchApply),
        CrashPlan::first(CrashPoint::AfterBatchApply),
        CrashPlan::first(CrashPoint::MidIpi),
        CrashPlan::first(CrashPoint::MidLogAppend),
    ];
    for plan in plans {
        let point = plan.point;
        let rep = crash_run(vec![plan], None);
        assert_eq!(rep.point, point);
        let summary = rep.recovery.expect("recovery was requested");
        let report = summary
            .outcome
            .unwrap_or_else(|e| panic!("{point}: recovery failed closed: {e}"));
        assert_eq!(summary.attempts, 1, "{point}: single crash, single attempt");
        assert!(
            report.objects > 0 && report.roots > 0,
            "{point}: recovery rebuilt an empty heap"
        );
        match report.class {
            // Crashes before the first mutation leave nothing to undo.
            CycleClass::Uncommitted => assert_eq!(report.undone_ops, 0, "{point}"),
            CycleClass::Torn => assert!(report.undone_ops > 0, "{point}"),
            other => panic!("{point}: unexpected cycle class {other:?}"),
        }
    }
}

/// A double crash — the plan also fires inside recovery — is retried:
/// the undo pass is idempotent, so the second attempt succeeds.
#[test]
fn double_crash_inside_recovery_retries_and_succeeds() {
    let rep = crash_run(
        vec![
            CrashPlan::first(CrashPoint::AfterBatchApply),
            CrashPlan::nth(CrashPoint::InsideRecovery, 2),
        ],
        None,
    );
    let summary = rep.recovery.expect("recovery was requested");
    assert!(summary.attempts >= 2, "the InsideRecovery plan must have fired");
    let report = summary.outcome.expect("second attempt must succeed");
    assert_eq!(report.class, CycleClass::Torn);
}

/// An armed plan whose occurrence count is never reached completes the
/// run normally, and the result matches a plain (crash-free) run bit for
/// bit — arming the WAL must not perturb the simulation.
#[test]
fn unfired_crash_plans_do_not_perturb_the_run() {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = cfg_with(vec![CrashPlan::nth(CrashPoint::MidIpi, 1_000_000)]);
    let armed = match run_with_crash(w.as_mut(), &cfg, true).unwrap() {
        CrashOutcome::Completed(r) => *r,
        CrashOutcome::Crashed(rep) => panic!("plan fired unexpectedly at {}", rep.point),
    };
    let mut w2 = suite::by_name(SEED_WORKLOAD).unwrap();
    let plain_cfg = RunConfig::new(CollectorKind::Svagc)
        .with_verify_phases(true)
        .with_tlb_oracle(true);
    let plain = run(w2.as_mut(), &plain_cfg).unwrap();
    assert_eq!(armed.heap_hash, plain.heap_hash);
    assert_eq!(armed.gc.count(), plain.gc.count());
}

/// `run_classified` surfaces a fired crash as a classified failure with
/// the stable exit code 13, naming the crash point.
#[test]
fn classified_run_reports_crashes_with_exit_code_13() {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = cfg_with(vec![CrashPlan::first(CrashPoint::MidIpi)]);
    let f = run_classified(w.as_mut(), &cfg).unwrap_err();
    assert_eq!(f.kind.exit_code(), 13);
    assert!(
        matches!(f.kind, FailureKind::Crash(CrashPoint::MidIpi)),
        "{:?}",
        f.kind
    );
    assert!(f.message.contains("mid-ipi"), "{}", f.message);
}

/// The exit-code contract scripts depend on (10/11/12/13/15/16, 1 for
/// the rest; 14 is the CLI-side recovery-failed code) is stable.
#[test]
fn failure_exit_codes_are_a_stable_contract() {
    assert_eq!(FailureKind::Watchdog.exit_code(), 10);
    assert_eq!(FailureKind::FaultAbort.exit_code(), 11);
    assert_eq!(FailureKind::DegradeExhausted.exit_code(), 12);
    assert_eq!(FailureKind::Crash(CrashPoint::MidIpi).exit_code(), 13);
    assert_eq!(FailureKind::OutOfMemory.exit_code(), 15);
    assert_eq!(FailureKind::DeviceFailed.exit_code(), 16);
    assert_eq!(FailureKind::Other.exit_code(), 1);
    // The labels are greppable CI surface, pinned alongside the codes.
    assert_eq!(FailureKind::OutOfMemory.label(), "out-of-memory");
    assert_eq!(FailureKind::FaultAbort.label(), "fault-abort");
    assert_eq!(FailureKind::DeviceFailed.label(), "device-failed");
}

/// Teeth: a WAL that silently drops a PTE-swap intent leaves a live
/// object's pages exchanged after the undo pass. Recovery must detect
/// the hybrid heap and fail closed, not report success.
#[test]
fn dropped_intents_fail_recovery_closed() {
    let rep = crash_run(
        vec![CrashPlan::first(CrashPoint::AfterBatchApply)],
        Some(WalMutation::DropIntent),
    );
    let summary = rep.recovery.expect("recovery was requested");
    let err = summary.outcome.expect_err("a mutated log must not verify");
    assert!(
        err.contains("hybrid") || err.contains("mismatch"),
        "unexpected failure reason: {err}"
    );
}

/// Teeth: an intent record whose pre-image was bit-flipped in the log
/// decodes as `BadIntent` — the pre-image checksum no longer matches —
/// and recovery must refuse to replay a payload it cannot trust.
#[test]
fn corrupted_preimages_fail_recovery_closed() {
    let rep = crash_run(
        vec![CrashPlan::first(CrashPoint::AfterBatchApply)],
        Some(WalMutation::CorruptPreimage),
    );
    let summary = rep.recovery.expect("recovery was requested");
    let err = summary.outcome.expect_err("a corrupted log must not verify");
    assert!(
        err.contains("checksum"),
        "the refusal must name the checksum failure: {err}"
    );
}

/// Teeth: skipping commit records strands earlier epochs unresolved
/// under later ones; on a multi-cycle log, recovery refuses to guess.
#[test]
fn skipped_commits_fail_recovery_closed_on_multi_cycle_logs() {
    let rep = crash_run(
        vec![CrashPlan::nth(CrashPoint::MidIpi, 100)],
        Some(WalMutation::SkipCommit),
    );
    let summary = rep.recovery.expect("recovery was requested");
    let err = summary.outcome.expect_err("a commit-less log must not verify");
    assert!(err.contains("unresolved"), "unexpected failure reason: {err}");
}
