//! Workspace-level integration: the full stack (machine model → vmem →
//! kernel → heap → collector → workload driver) through the `svagc`
//! facade, checking the invariants that hold the reproduction together.

use svagc::gc::{Collector, GcConfig, Lisp2Collector};
use svagc::heap::{Heap, HeapConfig, ObjShape, RootSet};
use svagc::kernel::{CoreId, Kernel, SwapRequest, SwapVaOptions};
use svagc::metrics::MachineConfig;
use svagc::vmem::{AddressSpace, Asid, PAGE_SIZE};
use svagc::workloads::driver::{run, CollectorKind, RunConfig};
use svagc::workloads::{run_multi, suite};

const CORE: CoreId = CoreId(0);

#[test]
fn facade_reexports_compose() {
    // The README quickstart, condensed: everything is reachable from the
    // facade and works together.
    let mut kernel = Kernel::with_bytes(MachineConfig::i5_7600(), 16 << 20);
    let mut heap = Heap::new(&mut kernel, Asid(1), HeapConfig::new(8 << 20)).unwrap();
    let mut roots = RootSet::new();
    let (obj, _) = heap
        .alloc(&mut kernel, CORE, ObjShape::data_bytes(64 << 10))
        .unwrap();
    roots.push(obj);
    let mut gc = Lisp2Collector::new(GcConfig::svagc(2));
    let stats = gc.collect(&mut kernel, &mut heap, &mut roots).unwrap();
    assert_eq!(stats.live_objects, 1);
    assert_eq!(gc.name(), "SVAGC");
}

#[test]
fn perf_counters_are_internally_consistent() {
    let mut w = suite::by_name("Sigverify").unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc);
    let r = run(w.as_mut(), &cfg).unwrap();
    let p = &r.perf;
    // Every swapped object implies PTE swaps; every syscall was counted.
    assert!(p.pte_swaps > 0);
    assert!(p.objects_swapped > 0);
    assert!(p.objects_moved >= p.objects_swapped);
    assert!(p.syscalls > 0);
    assert!(p.tlb_misses <= p.tlb_lookups);
    assert_eq!(p.gc_cycles as usize, r.gc.count());
    // SwapVA path is genuinely zero-copy: the only copied bytes come from
    // sub-threshold objects.
    assert!(p.bytes_copied < r.gc.cycles.iter().map(|c| c.swapped_bytes).sum::<u64>());
}

#[test]
fn gc_stats_tie_out_with_heap_state() {
    let mut kernel = Kernel::with_bytes(MachineConfig::xeon_gold_6130(), 32 << 20);
    let mut heap = Heap::new(&mut kernel, Asid(1), HeapConfig::new(16 << 20)).unwrap();
    let mut roots = RootSet::new();
    let mut live_bytes = 0u64;
    for i in 0..120u64 {
        let shape = if i % 5 == 0 {
            ObjShape::data_bytes(11 * PAGE_SIZE)
        } else {
            ObjShape::data(200)
        };
        let (obj, _) = heap.alloc(&mut kernel, CORE, shape).unwrap();
        if i % 2 == 0 {
            roots.push(obj);
            live_bytes += shape.size_bytes();
        }
    }
    let mut gc = Lisp2Collector::new(GcConfig::svagc(4));
    let stats = gc.collect(&mut kernel, &mut heap, &mut roots).unwrap();
    assert_eq!(stats.live_objects, 60);
    assert_eq!(stats.live_bytes, live_bytes);
    // After compaction the heap cursor equals live bytes + alignment gaps.
    assert!(heap.used_bytes() >= live_bytes);
    assert!(heap.used_bytes() < live_bytes + 30 * PAGE_SIZE);
}

#[test]
fn shootdown_counts_follow_equation_two() {
    // Eq. 2: naive IPIs / pinned IPIs == number of swappable objects.
    let objects = 25u64;
    let count_ipis = |pinned: bool| {
        let mut k = Kernel::new(MachineConfig::xeon_gold_6130(), 2048);
        let mut s = AddressSpace::new(Asid(1));
        let opts = if pinned {
            SwapVaOptions::pinned()
        } else {
            SwapVaOptions::naive()
        };
        if pinned {
            k.flush_asid_all_cores(CORE, s.asid());
        }
        for _ in 0..objects {
            let a = k.vmem.alloc_region(&mut s, 12).unwrap();
            let b = k.vmem.alloc_region(&mut s, 12).unwrap();
            k.swap_va(&mut s, CORE, SwapRequest { a, b, pages: 12 }, opts)
                .unwrap();
        }
        k.perf.ipis_sent
    };
    let naive = count_ipis(false);
    let pinned = count_ipis(true);
    assert_eq!(naive, objects * 31);
    assert_eq!(pinned, 31);
    assert_eq!(naive / pinned, objects, "gain = l-bar (Eq. 2)");
}

#[test]
fn threshold_config_controls_swapping() {
    // With a sky-high threshold, SVAGC degenerates to pure memmove.
    let mut w = suite::by_name("Sigverify").unwrap();
    let mut cfg = RunConfig::new(CollectorKind::Svagc);
    cfg.threshold_pages = Some(1 << 20);
    let r = run(w.as_mut(), &cfg).unwrap();
    assert!(r.verify_ok);
    assert_eq!(r.perf.objects_swapped, 0);
    assert!(r.perf.bytes_copied > 0);
}

#[test]
fn multi_jvm_is_deterministic_despite_host_parallelism() {
    let go = || {
        let mut base = RunConfig::new(CollectorKind::ParallelGc);
        base.gc_threads = 4;
        let res = run_multi(
            4,
            |i| {
                Box::new(svagc::workloads::lrucache::LruCache::new(
                    64,
                    128 << 10,
                    4,
                    42 + i as u64,
                ))
            },
            &base,
        )
        .unwrap();
        res.per_jvm
            .iter()
            .map(|r| (r.gc.total_pause(), r.app_cycles))
            .collect::<Vec<_>>()
    };
    assert_eq!(go(), go());
}

#[test]
fn every_benchmark_runs_under_every_collector() {
    // Smoke the full matrix on short runs: no OOMs, no corruption.
    for name in [
        "FFT.large/16",
        "Sparse.large/4",
        "LU.large",
        "Bisort",
        "LRUCache",
    ] {
        for kind in [
            CollectorKind::Svagc,
            CollectorKind::SvagcMemmove,
            CollectorKind::ParallelGc,
            CollectorKind::Shenandoah,
        ] {
            let mut w = suite::by_name(name).unwrap();
            let mut cfg = RunConfig::new(kind);
            cfg.steps = Some(25);
            let r = run(w.as_mut(), &cfg)
                .unwrap_or_else(|e| panic!("{name} under {}: {e}", kind.label()));
            assert!(r.verify_ok, "{name} under {}", kind.label());
        }
    }
}

#[test]
fn interference_only_from_shootdowns() {
    // ParallelGC never changes PTEs, so it never interferes via IPIs.
    let mut w = suite::by_name("Compress").unwrap();
    let r = run(w.as_mut(), &RunConfig::new(CollectorKind::ParallelGc)).unwrap();
    assert_eq!(r.perf.ipis_sent, 0);
    assert_eq!(r.gc.total_interference().get(), 0);
    // SVAGC does interfere (broadcasts) but far less than it saves.
    let mut w2 = suite::by_name("Compress").unwrap();
    let r2 = run(w2.as_mut(), &RunConfig::new(CollectorKind::Svagc)).unwrap();
    assert!(r2.perf.ipis_sent > 0);
    assert!(r2.gc.total_interference().get() > 0);
    assert!(r2.total_wall < r.total_wall, "SVAGC should still win overall");
}
