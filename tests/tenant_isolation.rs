//! End-to-end tenant isolation: a multi-JVM fleet under a shared frame
//! pool where victim tenants are driven to quarantine — by seeded SwapVA
//! faults or by an impossible memory budget — while the blast radius is
//! checked by both oracles: healthy tenants' heaps must be bit-identical
//! to a fault-free twin fleet's, and the pool must account every frame
//! (in-use == survivors' footprints, ownership audit clean, quarantined
//! tenants owning nothing).

use svagc::workloads::churn::{ChurnSpec, ChurnWorkload, SizeDist};
use svagc::workloads::driver::{FailureKind, RunConfig};
use svagc::workloads::multijvm::{run_fleet, FleetConfig, TenantOutcome};
use svagc::workloads::noisy::{
    default_collector, noisy_workload, quota_frames, run_noisy_neighbor, NoisySpec,
};
use svagc::workloads::workload::Workload;

/// The headline E2E: a 10% permanent-fault victim is quarantined with a
/// typed, greppable failure while the fleet itself exits successfully,
/// every healthy tenant completes, and both oracles hold. `Ok` from
/// [`run_noisy_neighbor`] *is* the oracle proof — an isolation or
/// frame-leak violation is an `Err` of the harness, not a tenant failure.
#[test]
fn faulted_victim_quarantines_while_the_fleet_survives_and_oracles_hold() {
    let spec = NoisySpec::standard(0.10, 42);
    let base = RunConfig::new(default_collector());
    let out = run_noisy_neighbor(&spec, &base).expect("blast radius must hold");

    assert_eq!(out.faulty.survivors(), spec.tenants - 1);
    assert_eq!(out.faulty.quarantined(), 1);
    match &out.faulty.outcomes[0] {
        TenantOutcome::Quarantined { kind, message, attempts, frames_reclaimed } => {
            assert_eq!(*kind, FailureKind::FaultAbort);
            assert_eq!(kind.exit_code(), 11, "stable exit-code contract");
            assert_eq!(*attempts, spec.max_attempts);
            assert!(*frames_reclaimed > 0, "teardown must return the victim's frames");
            assert!(message.contains("swap"), "classified message names the cause: {message}");
        }
        TenantOutcome::Completed(_) => panic!("victim must not survive 10% permanent faults"),
    }
    // The fault-free twin is whole, and every healthy tenant compared
    // bit-identical against it.
    assert_eq!(out.clean.survivors(), spec.tenants);
    assert_eq!(out.isolation_compared, spec.tenants - 1);
    assert!(out.frames_audited > 0);
}

/// A tenant whose live set cannot fit its quota is driven down the whole
/// pressure ladder to a typed, tenant-local `OutOfMemory` quarantine
/// (exit code 15) — never a panic, never another tenant's frames — while
/// its normally-sized neighbors ride the ladder and complete.
#[test]
fn oom_quarantine_is_tenant_local_and_typed() {
    let spec = NoisySpec {
        victims: vec![],
        ..NoisySpec::standard(0.0, 7)
    };
    let base = RunConfig::new(default_collector());
    let (quota, headroom) = quota_frames(&spec, base.heap_factor);
    let fleet = FleetConfig::pooled(quota * spec.tenants as u32, quota, headroom)
        .with_pressure(true)
        .with_max_attempts(2);
    // Tenant 0 gets a live set ~3x the others': its compacted footprint
    // alone exceeds the quota, which no GC remedy can fix.
    let glutton = spec.live_objects * 3;
    let make = |i: usize| -> Box<dyn Workload> {
        if i == 0 {
            Box::new(ChurnWorkload::new(ChurnSpec {
                name: "glutton/t0".into(),
                threads: 4,
                live_objects: glutton,
                size: SizeDist::Mix { small: 2 << 10, large: 120 << 10, p_large: 0.04 },
                refs_per_object: 2,
                alloc_fraction_per_step: 0.30,
                compute_millicycles_per_byte: 40,
                steps: spec.steps,
                seed: spec.seed,
            }))
        } else {
            noisy_workload(&spec, i)
        }
    };
    let res =
        run_fleet(spec.tenants, make, &base, &fleet, |_, c| c).expect("fleet-level success");

    match &res.outcomes[0] {
        TenantOutcome::Quarantined { kind, message, frames_reclaimed, .. } => {
            assert_eq!(*kind, FailureKind::OutOfMemory);
            assert_eq!(kind.exit_code(), 15, "stable exit-code contract");
            assert!(
                message.contains("out of memory"),
                "typed OOM, not a panic or a generic error: {message}"
            );
            assert!(*frames_reclaimed > 0 || res.pool.is_some());
        }
        TenantOutcome::Completed(_) => panic!("a 3x live set cannot fit the shared quota"),
    }
    for (i, o) in res.outcomes.iter().enumerate().skip(1) {
        assert!(o.is_completed(), "tenant {i} must be untouched by tenant 0's OOM");
    }
    // The glutton's frames all went back: the pool accounts exactly the
    // survivors' footprints.
    let audited = res.frame_leak_oracle().expect("no leaked or dual-owned frames");
    assert!(audited > 0);
}

/// Pressure off, same squeeze: the fleet must *not* fall over the cliff
/// into a panic — denials surface as typed per-tenant outcomes either
/// way. (With the ladder armed the same fleet completes whole; that
/// contrast is the pressure subsystem's value, pinned here.)
#[test]
fn pressure_ladder_is_the_difference_between_survival_and_typed_oom() {
    let spec = NoisySpec {
        victims: vec![],
        steps: 6,
        ..NoisySpec::standard(0.0, 7)
    };
    let base = RunConfig::new(default_collector());
    let (quota, headroom) = quota_frames(&spec, base.heap_factor);
    let mk_fleet = |pressure: bool| {
        FleetConfig::pooled(quota * spec.tenants as u32, quota, headroom)
            .with_pressure(pressure)
            .with_max_attempts(1)
    };
    let armed = run_fleet(
        spec.tenants,
        |i| noisy_workload(&spec, i),
        &base,
        &mk_fleet(true),
        |_, c| c,
    )
    .expect("fleet-level success");
    assert_eq!(armed.survivors(), spec.tenants, "the ladder must carry the squeeze");

    let unarmed = run_fleet(
        spec.tenants,
        |i| noisy_workload(&spec, i),
        &base,
        &mk_fleet(false),
        |_, c| c,
    )
    .expect("fleet-level success even when tenants fail");
    // Without the ladder some tenant hits a raw quota denial; whatever
    // falls must fall as a classified OutOfMemory, and the pool must
    // still balance.
    for o in &unarmed.outcomes {
        if let TenantOutcome::Quarantined { kind, .. } = o {
            assert_eq!(*kind, FailureKind::OutOfMemory);
        }
    }
    assert!(
        unarmed.survivors() < spec.tenants,
        "the squeeze is real: without the ladder the fleet cannot be whole"
    );
    unarmed.frame_leak_oracle().expect("quarantine teardown must balance the pool");
}
