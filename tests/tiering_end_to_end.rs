//! End-to-end cold-object tiering: real workloads driven through the
//! full driver with a fallible far-memory device underneath. The
//! invisibility oracle is the contract: whatever the device does —
//! nothing, transient chaos, or permanent death — the mutator-visible
//! heap must be bit-identical to a DRAM-only run, or the run must end
//! with the typed device-failed verdict. Never a panic, never silent
//! corruption.

use svagc::kernel::{CrashPlan, CrashPoint};
use svagc::workloads::driver::{
    run, run_classified, run_with_crash, CollectorKind, CrashOutcome, FailureKind,
    RunConfig, RunResult,
};
use svagc::workloads::suite;

const SEED_WORKLOAD: &str = "LRUCache";
const DEVICE_SEED: u64 = 0xD1CE;

fn dram_only_run() -> RunResult {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc).with_verify_phases(true);
    run(w.as_mut(), &cfg).expect("DRAM-only reference run")
}

fn tiered_run(dram_fraction: f64, fault_rate: f64) -> RunResult {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc)
        .with_verify_phases(true)
        .with_tiering(dram_fraction)
        .with_device_faults(fault_rate, DEVICE_SEED);
    run(w.as_mut(), &cfg)
        .unwrap_or_else(|e| panic!("tiered run (f={dram_fraction}, p={fault_rate}): {e}"))
}

/// The invisibility oracle on a healthy device: a run keeping only a
/// fraction of the heap resident demotes real pages, fetches them back
/// on access, and still ends with a live heap bit-identical to the
/// DRAM-only run — the tier is invisible to the mutator.
#[test]
fn tiered_run_is_bit_identical_to_dram_only() {
    let reference = dram_only_run();
    for frac in [0.3, 0.6] {
        let tiered = tiered_run(frac, 0.0);
        assert!(tiered.verify_ok, "f={frac}");
        assert_eq!(
            tiered.heap_hash, reference.heap_hash,
            "f={frac}: tiering must be invisible to the mutator"
        );
        assert_eq!(
            tiered.gc.count(),
            reference.gc.count(),
            "f={frac}: tiering must not change the GC schedule"
        );
        assert_eq!(tiered.tier_mode, "tiered", "f={frac}");
        assert!(tiered.tier.demotions > 0, "f={frac}: cold pages must demote");
        assert!(
            tiered.tier.promotions > 0,
            "f={frac}: demoted pages must come back"
        );
        // The end-of-run drain emptied the device (the driver's oracle
        // fails the run otherwise; these are the reported counters).
        assert!(tiered.device.slots_peak > 0, "f={frac}");
    }
    // The reference run carries no tier surface at all.
    assert_eq!(reference.tier_mode, "off");
    assert_eq!(reference.tier.demotions, 0);
}

/// The full device-fault matrix: transient EIO, latency spikes, and torn
/// writebacks at escalating rates. The retry ladder (with read-back
/// verify catching the torn writes) must absorb everything and the heap
/// must stay bit-identical at every point of the matrix.
#[test]
fn device_fault_matrix_stays_bit_identical() {
    let reference = dram_only_run();
    for frac in [0.3, 0.6] {
        for rate in [0.01, 0.10] {
            let faulty = tiered_run(frac, rate);
            assert!(faulty.verify_ok, "f={frac} p={rate}");
            assert_eq!(
                faulty.heap_hash, reference.heap_hash,
                "f={frac} p={rate}: heap diverged under device faults"
            );
            assert!(
                faulty.device.faults > 0,
                "f={frac} p={rate}: the plan must fire over a full run"
            );
        }
    }
    // At 10% the retry ladder must actually have been exercised.
    let heavy = tiered_run(0.3, 0.10);
    assert!(
        heavy.tier.writeback_retries + heavy.tier.fetch_retries > 0,
        "10% device faults must surface as retries"
    );
    assert!(
        heavy.device.torn_writebacks > 0,
        "the uniform mix at 10% must tear at least one writeback"
    );
}

/// Whole-device loss before anything was demoted: the first writeback
/// fails permanently, the ladder degrades to DRAM-only mode, and the run
/// completes normally — bit-identical heap, mode reported for the CI
/// greps. Losing a device you never stored data on costs nothing.
#[test]
fn early_device_death_degrades_to_dram_only_and_completes() {
    let reference = dram_only_run();
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc)
        .with_verify_phases(true)
        .with_tiering(0.3)
        .with_device_offline_after(0);
    let r = run(w.as_mut(), &cfg).expect("degraded run must complete");
    assert_eq!(r.tier_mode, "dram-only");
    assert!(r.tier_ctl.degraded >= 1, "the ladder must have degraded");
    assert_eq!(r.tier.demotions, 0, "nothing ever reached the dead device");
    assert_eq!(r.heap_hash, reference.heap_hash);
    assert!(
        r.tier_ctl.reprobes > 0,
        "DRAM-only mode must keep probing the device after probation"
    );
    assert_eq!(r.tier_ctl.recovered, 0, "a latched-offline device never heals");
}

/// Whole-device loss after cold pages went far: the device holds the
/// only copy, so this is past the last rung of the ladder — the run must
/// end with the typed device-failed verdict and exit code 16, not a
/// panic and not silent corruption.
#[test]
fn mid_run_device_death_fails_typed_with_exit_code_16() {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc)
        .with_verify_phases(true)
        .with_tiering(0.3)
        .with_device_offline_after(500);
    let f = run_classified(w.as_mut(), &cfg)
        .expect_err("losing far data must fail the run");
    assert_eq!(f.kind, FailureKind::DeviceFailed, "{}", f.message);
    assert_eq!(f.kind.exit_code(), 16);
    assert_eq!(f.kind.label(), "device-failed");
    assert!(
        f.message.contains("far-tier") || f.message.contains("far tier"),
        "the message must name the tier: {}",
        f.message
    );
}

/// Crash matrix, demotion tooth: the machine dies between a completed
/// device writeback and the durable residency record. Recovery must keep
/// the page resident (the DRAM copy is intact), reclaim the orphaned
/// slot, and rebuild a verified heap.
#[test]
fn crash_mid_demote_writeback_recovers_verified() {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc)
        .with_verify_phases(true)
        .with_tiering(0.3)
        .with_crash_plans(vec![CrashPlan::nth(CrashPoint::MidDemoteWriteback, 8)]);
    let rep = match run_with_crash(w.as_mut(), &cfg, true)
        .unwrap_or_else(|f| panic!("{}", f.message))
    {
        CrashOutcome::Crashed(rep) => *rep,
        CrashOutcome::Completed(_) => panic!("the demotion crash point never fired"),
    };
    assert_eq!(rep.point, CrashPoint::MidDemoteWriteback);
    let summary = rep.recovery.expect("recovery was requested");
    let report = summary
        .outcome
        .unwrap_or_else(|e| panic!("recovery failed closed: {e}"));
    assert!(report.objects > 0 && report.roots > 0);
    // Seven demotions committed before the eighth crashed; recovery must
    // have replayed that residency and promoted every page home.
    assert!(
        report.far_restored > 0,
        "pages demoted before the crash must be restored"
    );
}

/// Crash matrix, promotion tooth: the machine dies after the device
/// fetch returns but before anything lands in DRAM. Residency and slot
/// are untouched, so recovery simply re-fetches — and the report counts
/// the restored pages.
#[test]
fn crash_mid_promote_fetch_recovers_verified() {
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc)
        .with_verify_phases(true)
        .with_tiering(0.3)
        .with_crash_plans(vec![CrashPlan::first(CrashPoint::MidPromoteFetch)]);
    let rep = match run_with_crash(w.as_mut(), &cfg, true)
        .unwrap_or_else(|f| panic!("{}", f.message))
    {
        CrashOutcome::Crashed(rep) => *rep,
        CrashOutcome::Completed(_) => panic!("the promotion crash point never fired"),
    };
    assert_eq!(rep.point, CrashPoint::MidPromoteFetch);
    let summary = rep.recovery.expect("recovery was requested");
    let report = summary
        .outcome
        .unwrap_or_else(|e| panic!("recovery failed closed: {e}"));
    assert!(report.objects > 0 && report.roots > 0);
    assert!(
        report.far_restored > 0,
        "the interrupted promotion's page must be restored by recovery"
    );
}

/// Tiering composes with SwapVA kernel fault injection: both fault
/// planes active at once, heap still bit-identical to the clean
/// DRAM-only run.
#[test]
fn tiering_composes_with_swapva_faults() {
    let reference = dram_only_run();
    let mut w = suite::by_name(SEED_WORKLOAD).unwrap();
    let cfg = RunConfig::new(CollectorKind::Svagc)
        .with_verify_phases(true)
        .with_tiering(0.5)
        .with_device_faults(0.05, DEVICE_SEED)
        .with_faults(0.01, 0xFA017);
    let r = run(w.as_mut(), &cfg).expect("both fault planes must be absorbed");
    assert_eq!(r.heap_hash, reference.heap_hash);
    assert!(r.gc.total_faults_injected() > 0, "the SwapVA plan must fire");
    assert!(r.tier.demotions > 0, "the tier must be active");
}
