//! Trace-layer integration: determinism of the Chrome exporter over a
//! full benchmark run, structural validity of the JSON, agreement between
//! the unified counter registry and the kernel's perf counters, and the
//! zero-divergence guarantee of the disabled tracer.
//!
//! Everything here runs on the default feature set (tracing compiled in);
//! the `--no-default-features` build compiles these tests out along with
//! the sink itself.
#![cfg(feature = "trace")]

use svagc::metrics::{chrome_trace_json, trace_summary, TraceKind};
use svagc::workloads::driver::{run, CollectorKind, RunConfig, RunResult};
use svagc::workloads::suite;

fn traced_run(fault_rate: f64) -> RunResult {
    let mut w = suite::by_name("Sigverify").unwrap();
    let mut cfg = RunConfig::new(CollectorKind::Svagc).with_trace(true);
    if fault_rate > 0.0 {
        cfg = cfg.with_faults(fault_rate, 0xFA017);
    }
    run(w.as_mut(), &cfg).unwrap()
}

#[test]
fn chrome_export_is_byte_identical_across_runs() {
    let a = chrome_trace_json(&traced_run(0.0).trace);
    let b = chrome_trace_json(&traced_run(0.0).trace);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce byte-identical traces");
}

#[test]
fn chrome_export_is_structurally_valid() {
    let r = traced_run(0.0);
    assert!(!r.trace.is_empty(), "a traced SVAGC run must record events");
    let json = chrome_trace_json(&r.trace);
    // The trace_event envelope chrome://tracing and Perfetto expect.
    assert!(json.starts_with("{\"displayTimeUnit\":"));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.ends_with("]}\n"));
    // One JSON object per recorded event, each in the shared process.
    assert_eq!(json.matches("\"pid\":1").count(), r.trace.len());
    assert_eq!(
        json.matches("\"ph\":\"X\"").count() + json.matches("\"ph\":\"i\"").count(),
        r.trace.len()
    );
    // Every GC phase kind shows up in a full SVAGC collection.
    for kind in [
        TraceKind::GcCycle,
        TraceKind::MarkPhase,
        TraceKind::ForwardPhase,
        TraceKind::AdjustPhase,
        TraceKind::CompactPhase,
        TraceKind::SwapVa,
        TraceKind::Shootdown,
        TraceKind::BatchFlush,
    ] {
        assert!(
            r.trace.iter().any(|e| e.kind == kind),
            "no {} events in the trace",
            kind.name()
        );
    }
}

#[test]
fn registry_agrees_with_perf_counters() {
    // The trace is not a second bookkeeping system: its per-event args are
    // perf-counter deltas, so registry totals must equal the counters.
    let r = traced_run(0.0);
    let reg = r.registry();
    let get = |k: &str| reg.get(k);
    assert_eq!(get("trace.swapva.pte_swaps"), r.perf.pte_swaps);
    assert_eq!(get("trace.shootdown.ipis"), r.perf.ipis_sent);
    assert_eq!(get("trace.memmove.bytes"), r.perf.bytes_copied);
    assert_eq!(get("gc.cycles"), r.gc.count() as u64);
    assert_eq!(get("gc.pause.total"), r.gc.total_pause().get());
    assert_eq!(get("perf.pte_swaps"), r.perf.pte_swaps);
    // Span time per phase kind equals the GC log's phase totals.
    let phase_cycles = |k: TraceKind| {
        r.trace
            .iter()
            .filter(|e| e.kind == k)
            .map(|e| e.dur.unwrap().get())
            .sum::<u64>()
    };
    let phases = r.gc.phase_totals();
    assert_eq!(phase_cycles(TraceKind::MarkPhase), phases.mark.get());
    assert_eq!(phase_cycles(TraceKind::ForwardPhase), phases.forward.get());
    assert_eq!(phase_cycles(TraceKind::AdjustPhase), phases.adjust.get());
    assert_eq!(phase_cycles(TraceKind::CompactPhase), phases.compact.get());
    assert_eq!(
        phase_cycles(TraceKind::GcCycle),
        r.gc.total_pause().get(),
        "GcCycle spans cover exactly the STW pauses"
    );
}

#[test]
fn faulty_run_traces_every_resilience_event() {
    let r = traced_run(0.35);
    let count = |k: TraceKind| r.trace.iter().filter(|e| e.kind == k).count() as u64;
    assert_eq!(count(TraceKind::FaultInjected), r.gc.total_faults_injected());
    assert_eq!(count(TraceKind::SwapRetry), r.gc.total_swap_retries());
    assert_eq!(count(TraceKind::SwapFallback), r.gc.total_swap_fallbacks());
    assert_eq!(count(TraceKind::BatchSplit), r.gc.total_batch_splits());
    assert!(
        count(TraceKind::FaultInjected) > 0,
        "a 35% fault rate must inject faults"
    );
    // Successful swaps account their PTE flips; swaps applied before a
    // mid-batch fault are charged to the kernel counter only, so the
    // trace total is a lower bound under fault injection.
    let reg = r.registry();
    assert!(reg.get("trace.swapva.pte_swaps") <= r.perf.pte_swaps);
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    // The acceptance bar for "zero-cost when disabled": enabling the
    // tracer changes what is *recorded*, never what is *simulated*.
    let traced = traced_run(0.0);
    let mut w = suite::by_name("Sigverify").unwrap();
    let untraced = run(w.as_mut(), &RunConfig::new(CollectorKind::Svagc)).unwrap();
    assert!(untraced.trace.is_empty());
    assert_eq!(untraced.perf, traced.perf);
    assert_eq!(untraced.heap_hash, traced.heap_hash);
    assert_eq!(untraced.total_wall, traced.total_wall);
    assert_eq!(untraced.gc.total_pause(), traced.gc.total_pause());
}

#[test]
fn summary_renders_all_sections() {
    let r = traced_run(0.0);
    let s = trace_summary(&r.trace, 5, 32);
    assert!(s.contains("== trace summary:"));
    assert!(s.contains("-- gc phases --"));
    assert!(s.contains("-- top 5 swapva calls --"));
    assert!(s.contains("-- shootdowns:"));
    assert!(s.contains("victim core"));
}
